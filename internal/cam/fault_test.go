package cam

import (
	"fmt"
	"testing"

	"camsim/internal/fault"
	"camsim/internal/gpu"
	"camsim/internal/hostmem"
	"camsim/internal/mem"
	"camsim/internal/pcie"
	"camsim/internal/sim"
	"camsim/internal/spdk"
	"camsim/internal/ssd"
)

// faultRig mirrors newRig but installs one fault plan's injectors on every
// device before the controllers start.
func faultRig(nDevs int, cfg Config, plan *fault.Plan) *rig {
	e := sim.New()
	space := mem.NewSpace()
	fab := pcie.New(e, pcie.DefaultConfig())
	hm := hostmem.New(e, space, hostmem.DefaultConfig())
	g := gpu.New(e, "gpu0", gpu.DefaultConfig(), space)
	var devs []*ssd.Device
	for i := 0; i < nDevs; i++ {
		c := ssd.DefaultConfig()
		c.Seed = uint64(i + 1)
		d := ssd.New(e, fmt.Sprintf("nvme%d", i), c, fab, space)
		d.SetFaultInjector(plan.Injector(i))
		devs = append(devs, d)
	}
	m := New(e, cfg, g, hm, space, fab, devs)
	for _, d := range devs {
		d.Start()
	}
	return &rig{e: e, space: space, fab: fab, hm: hm, g: g, devs: devs, m: m}
}

// armedCAMConfig arms the backend recovery machinery the way
// platform/harness do under a fault plan.
func armedCAMConfig(nDevs int) Config {
	cfg := DefaultConfig(nDevs)
	cfg.Backend.CmdTimeout = 25 * sim.Millisecond
	cfg.Backend.MaxRetries = 3
	cfg.Backend.RetryBackoff = 100 * sim.Microsecond
	cfg.Backend.FailThreshold = 4
	return cfg
}

// TestInjectedErrorsSurfaceOnBatch: without retries armed, every injected
// media error must land on the batch handle — a GPU batch observes partial
// failure instead of hanging or silently succeeding.
func TestInjectedErrorsSurfaceOnBatch(t *testing.T) {
	plan := fault.NewPlan(7)
	plan.ErrRate = 1
	r := faultRig(2, DefaultConfig(2), plan)
	dst := r.m.Alloc("dst", 16*4096)
	var b *Batch
	r.e.Go("kernel", func(p *sim.Proc) {
		b = r.m.Prefetch(p, seqBlocks(16), dst, 0)
		r.m.PrefetchSynchronize(p)
	})
	r.e.Run()
	if b.OK() {
		t.Fatal("batch reported OK with every command failing")
	}
	if b.Errors() != 16 {
		t.Fatalf("batch errors = %d, want 16", b.Errors())
	}
	if st := r.m.Stats(); st.FailedRequests != 16 {
		t.Fatalf("FailedRequests = %d, want 16", st.FailedRequests)
	}
	inj := r.devs[0].Injector().Stats().Errors + r.devs[1].Injector().Stats().Errors
	if inj != 16 {
		t.Fatalf("injectors recorded %d errors, want 16", inj)
	}
}

// TestRetriesRecoverInjectedErrors: with the management thread's retry path
// armed, a 20% media-error rate is absorbed — the batch completes clean and
// the recovery counters show the work it took. Deterministic for this seed.
func TestRetriesRecoverInjectedErrors(t *testing.T) {
	plan := fault.NewPlan(7)
	plan.ErrRate = 0.2
	r := faultRig(2, armedCAMConfig(2), plan)
	dst := r.m.Alloc("dst", 256*4096)
	var b *Batch
	r.e.Go("kernel", func(p *sim.Proc) {
		b = r.m.Prefetch(p, seqBlocks(256), dst, 0)
		r.m.PrefetchSynchronize(p)
	})
	r.e.Run()
	rec := r.m.Driver().Recovery()
	if rec.Retries == 0 || rec.Recovered == 0 {
		t.Fatalf("no recovery activity at 20%% error rate: %+v", rec)
	}
	if !b.OK() {
		t.Fatalf("batch lost %d blocks despite retries (recovery %+v)", b.Errors(), rec)
	}
	if st := r.m.Stats(); st.FailedRequests != 0 {
		t.Fatalf("FailedRequests = %d after full recovery", st.FailedRequests)
	}
}

// TestDeviceDropOutDegradesBatch: one device of the stripe set dying must
// cost exactly its share of the batch — and later batches fail fast rather
// than burning a timeout per command.
func TestDeviceDropOutDegradesBatch(t *testing.T) {
	plan := fault.NewPlan(7)
	plan.FailDev, plan.FailAt = 0, 0 // device 0 dead from the start
	cfg := armedCAMConfig(2)
	cfg.Backend.MaxRetries = 1
	cfg.Backend.FailThreshold = 2
	r := faultRig(2, cfg, plan)
	dst := r.m.Alloc("dst", 32*4096)
	var b1, b2 *Batch
	var secondStart, secondEnd sim.Time
	r.e.Go("kernel", func(p *sim.Proc) {
		b1 = r.m.Prefetch(p, seqBlocks(32), dst, 0)
		r.m.PrefetchSynchronize(p)
		secondStart = p.Now()
		b2 = r.m.Prefetch(p, seqBlocks(32), dst, 0)
		r.m.PrefetchSynchronize(p)
		secondEnd = p.Now()
	})
	r.e.Run()
	// Even stripe: half of each batch lived on the dead device.
	if b1.OK() || b1.Errors() != 16 {
		t.Fatalf("first batch: OK=%v errors=%d, want 16 lost blocks", b1.OK(), b1.Errors())
	}
	if b2.OK() || b2.Errors() != 16 {
		t.Fatalf("second batch: OK=%v errors=%d, want 16 lost blocks", b2.OK(), b2.Errors())
	}
	rec := r.m.Driver().Recovery()
	if rec.DeviceFailures != 1 {
		t.Fatalf("DeviceFailures = %d, want 1", rec.DeviceFailures)
	}
	if !r.m.Driver().DeviceFailed(0) || r.m.Driver().DeviceFailed(1) {
		t.Fatal("wrong device marked failed")
	}
	// The second batch's dead-device half fast-fails: well under one
	// command timeout for the whole batch.
	if d := secondEnd - secondStart; d >= cfg.Backend.CmdTimeout {
		t.Fatalf("post-mortem batch took %v, at least a full timeout", d)
	}
	if rec.FastFails == 0 {
		t.Fatalf("no fast-fails recorded: %+v", rec)
	}
}

// TestFaultedRunReplaysDeterministically: the same seed must reproduce the
// whole faulted run — batch outcomes, recovery counters, injector stats and
// the virtual clock — bit for bit.
func TestFaultedRunReplaysDeterministically(t *testing.T) {
	run := func() (sim.Time, Stats, spdk.RecoveryStats, fault.Stats) {
		plan := fault.NewPlan(23)
		plan.ErrRate, plan.DropRate, plan.SlowRate = 5e-3, 1e-3, 5e-3
		r := faultRig(4, armedCAMConfig(4), plan)
		dst := r.m.Alloc("dst", 512*4096)
		rng := sim.NewRNG(9)
		r.e.Go("kernel", func(p *sim.Proc) {
			for i := 0; i < 4; i++ {
				blocks := make([]uint64, 512)
				for j := range blocks {
					blocks[j] = uint64(rng.Int63n(1 << 18))
				}
				r.m.Prefetch(p, blocks, dst, 0)
				r.m.PrefetchSynchronize(p)
			}
		})
		end := r.e.Run()
		var inj fault.Stats
		for _, d := range r.devs {
			inj.Add(d.Injector().Stats())
		}
		return end, r.m.Stats(), r.m.Driver().Recovery(), inj
	}
	e1, s1, r1, i1 := run()
	e2, s2, r2, i2 := run()
	if e1 != e2 || s1 != s2 || r1 != r2 || i1 != i2 {
		t.Fatalf("replay diverged:\n%v %+v %+v %+v\n%v %+v %+v %+v",
			e1, s1, r1, i1, e2, s2, r2, i2)
	}
	if i1.Errors == 0 && i1.Drops == 0 && i1.Slows == 0 {
		t.Fatal("plan injected nothing — test proves nothing")
	}
}
