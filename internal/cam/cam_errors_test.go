package cam

import (
	"fmt"
	"testing"

	"camsim/internal/gpu"
	"camsim/internal/hostmem"
	"camsim/internal/mem"
	"camsim/internal/pcie"
	"camsim/internal/sim"
	"camsim/internal/ssd"
)

// tinyRig builds a CAM instance over deliberately small SSDs so
// out-of-range blocks are easy to produce.
func tinyRig(t *testing.T) (*sim.Engine, *Manager, *gpu.GPU) {
	t.Helper()
	e := sim.New()
	space := mem.NewSpace()
	fab := pcie.New(e, pcie.DefaultConfig())
	hm := hostmem.New(e, space, hostmem.DefaultConfig())
	g := gpu.New(e, "gpu0", gpu.DefaultConfig(), space)
	var devs []*ssd.Device
	for i := 0; i < 2; i++ {
		c := ssd.DefaultConfig()
		c.CapacityBytes = 1 << 20 // 256 blocks of 4 KiB per device
		c.Seed = uint64(i + 1)
		devs = append(devs, ssd.New(e, fmt.Sprintf("nvme%d", i), c, fab, space))
	}
	m := New(e, DefaultConfig(2), g, hm, space, fab, devs)
	for _, d := range devs {
		d.Start()
	}
	return e, m, g
}

// TestErrorsPropagateToBatch injects out-of-range block reads and checks
// the failure surfaces on the batch handle instead of vanishing.
func TestErrorsPropagateToBatch(t *testing.T) {
	e, m, _ := tinyRig(t)
	dst := m.Alloc("dst", 8*4096)
	var b *Batch
	e.Go("kernel", func(p *sim.Proc) {
		// Blocks 4 and 6 are fine; 1<<30 is far beyond either namespace.
		b = m.Prefetch(p, []uint64{4, 1 << 30, 6, (1 << 30) + 1}, dst, 0)
		m.PrefetchSynchronize(p)
	})
	e.Run()
	if b.OK() {
		t.Fatal("batch with out-of-range blocks reported OK")
	}
	if b.Errors() != 2 {
		t.Fatalf("errors = %d, want 2", b.Errors())
	}
	if m.Stats().FailedRequests != 2 {
		t.Fatalf("FailedRequests = %d, want 2", m.Stats().FailedRequests)
	}
}

func TestCleanBatchReportsOK(t *testing.T) {
	e, m, _ := tinyRig(t)
	dst := m.Alloc("dst", 4*4096)
	var b *Batch
	e.Go("kernel", func(p *sim.Proc) {
		b = m.Prefetch(p, []uint64{0, 1, 2, 3}, dst, 0)
		m.PrefetchSynchronize(p)
	})
	e.Run()
	if !b.OK() || b.Errors() != 0 {
		t.Fatalf("clean batch: OK=%v errors=%d", b.OK(), b.Errors())
	}
}

// TestDeterministicEndToEnd runs an identical mixed workload twice and
// demands byte-identical stats and identical virtual end times.
func TestDeterministicEndToEnd(t *testing.T) {
	runOnce := func() (sim.Time, Stats) {
		cfg := DefaultConfig(4)
		cfg.DynamicCores = true
		r := newRig(4, cfg)
		dst := r.m.Alloc("dst", 512*4096)
		rng := sim.NewRNG(42)
		r.e.Go("kernel", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				blocks := make([]uint64, 512)
				for j := range blocks {
					blocks[j] = uint64(rng.Int63n(1 << 18))
				}
				r.m.Prefetch(p, blocks, dst, 0)
				r.g.RunKernel(p, gpu.KernelSpec{
					Name: "c", Threads: 4096,
					FullOccupancyTime: sim.Time(rng.Int63n(int64(sim.Millisecond))),
				})
				r.m.PrefetchSynchronize(p)
			}
		})
		end := r.e.Run()
		return end, r.m.Stats()
	}
	e1, s1 := runOnce()
	e2, s2 := runOnce()
	if e1 != e2 {
		t.Fatalf("virtual end times differ: %v vs %v", e1, e2)
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\n%+v\n%+v", s1, s2)
	}
}
