package gpu

import (
	"camsim/internal/mem"
	"camsim/internal/sim"
)

// CopyEngine models the cudaMemcpyAsync path between host DRAM and GPU HBM:
// a dedicated PCIe x16 DMA domain (separate from the SSD fabric) with a
// fixed per-call launch overhead. The launch overhead is what collapses
// small-granularity staged I/O in the paper's Figure 16: a 4 KiB copy costs
// ~3 µs of setup for ~0.2 µs of wire time (≈1.3 GB/s), while a 128 MiB copy
// amortizes setup completely (≈21 GB/s).
type CopyEngine struct {
	link      *sim.Link
	launchOvh sim.Time
	calls     int64
}

// CopyEngineConfig calibrates the engine.
type CopyEngineConfig struct {
	// Bandwidth is the H2D/D2H wire rate in bytes/s (PCIe Gen4 x16
	// effective).
	Bandwidth float64
	// LaunchOverhead is the per-cudaMemcpyAsync call setup cost.
	LaunchOverhead sim.Time
}

// DefaultCopyEngineConfig matches the paper's measurements (4 KiB staged
// granularity ⇒ ≈1.3 GB/s).
func DefaultCopyEngineConfig() CopyEngineConfig {
	return CopyEngineConfig{
		Bandwidth:      21e9,
		LaunchOverhead: 3 * sim.Microsecond,
	}
}

// NewCopyEngine creates the engine on e. The launch overhead occupies the
// engine itself (back-to-back small copies cannot pipeline their setup,
// which is exactly why Figure 16's staged path collapses).
func NewCopyEngine(e *sim.Engine, name string, cfg CopyEngineConfig) *CopyEngine {
	return &CopyEngine{
		link:      e.NewLink(name, cfg.Bandwidth, cfg.LaunchOverhead),
		launchOvh: cfg.LaunchOverhead,
	}
}

// ReserveCopy books one memcpy call of n bytes and returns its completion
// time without blocking.
func (ce *CopyEngine) ReserveCopy(n int64) sim.Time {
	ce.calls++
	return ce.link.Reserve(n)
}

// Copy blocks p for one memcpy call of n bytes and performs the real byte
// movement dst[:n] = src[:n].
func (ce *CopyEngine) Copy(p *sim.Proc, dst, src []byte, n int64) {
	ce.calls++
	done := ce.link.Reserve(n)
	copy(dst[:n], src[:n])
	p.SleepUntil(done)
}

// CopyPayload is Copy for payload content: same timing (one memcpy call of
// n bytes on the engine link), but the content moves by reference.
func (ce *CopyEngine) CopyPayload(p *sim.Proc, dst *mem.Payload, dstOff int64, src *mem.Payload, srcOff, n int64) {
	ce.calls++
	done := ce.link.Reserve(n)
	mem.PayloadCopy(dst, dstOff, src, srcOff, n)
	p.SleepUntil(done)
}

// Calls reports the number of memcpy invocations.
func (ce *CopyEngine) Calls() int64 { return ce.calls }

// TotalBytes reports bytes copied.
func (ce *CopyEngine) TotalBytes() int64 { return ce.link.TotalBytes() }

// EffectiveBandwidth reports the achieved rate for a given call granularity
// under this engine's parameters (analytic, used by planners and tests).
func (ce *CopyEngine) EffectiveBandwidth(granularity int64) float64 {
	per := float64(ce.launchOvh)/float64(sim.Second) + float64(granularity)/ce.link.Rate()
	return float64(granularity) / per
}
