package gpu

import (
	"math"
	"testing"

	"camsim/internal/mem"
	"camsim/internal/sim"
)

func newGPU(e *sim.Engine) *GPU {
	return New(e, "gpu0", DefaultConfig(), mem.NewSpace())
}

func TestTotalThreads(t *testing.T) {
	g := newGPU(sim.New())
	if g.TotalThreads() != 108*2048 {
		t.Fatalf("TotalThreads = %d", g.TotalThreads())
	}
}

func TestAllocRegistersHBM(t *testing.T) {
	e := sim.New()
	space := mem.NewSpace()
	g := New(e, "gpu0", DefaultConfig(), space)
	b := g.Alloc("feat", 1<<20)
	got, kind, err := space.Resolve(b.Addr, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if kind != mem.GPUHBM {
		t.Fatalf("kind = %v", kind)
	}
	got[5] = 0x99
	if b.Bytes()[5] != 0x99 {
		t.Fatal("resolve does not alias buffer")
	}
	b.Free()
	if _, _, err := space.Resolve(b.Addr, 1); err == nil {
		t.Fatal("freed buffer still mapped")
	}
}

func TestAllocPinnedFlag(t *testing.T) {
	g := newGPU(sim.New())
	if g.Alloc("a", 64).Pinned {
		t.Fatal("plain Alloc marked pinned")
	}
	if !g.AllocPinned("b", 64).Pinned {
		t.Fatal("AllocPinned not marked pinned")
	}
}

func TestOOMPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 20
	g := New(sim.New(), "gpu0", cfg, mem.NewSpace())
	defer func() {
		if recover() == nil {
			t.Fatal("OOM did not panic")
		}
	}()
	g.Alloc("big", 2<<20)
}

func TestPinThreadsClampsToCapacity(t *testing.T) {
	e := sim.New()
	g := newGPU(e)
	e.Go("bam", func(p *sim.Proc) {
		held, release := g.PinThreads(p, 10_000_000)
		if held != g.TotalThreads() {
			t.Errorf("held = %d, want %d", held, g.TotalThreads())
		}
		if g.SMUtilization() != 1 {
			t.Errorf("SMUtilization = %g, want 1", g.SMUtilization())
		}
		release()
	})
	e.Run()
	if g.FreeThreads() != g.TotalThreads() {
		t.Fatal("threads leaked")
	}
}

func TestKernelFullSpeedWhenIdle(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.KernelLaunchOverhead = 0
	g := New(e, "gpu0", cfg, mem.NewSpace())
	var dur sim.Time
	e.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		g.RunKernel(p, KernelSpec{Name: "k", Threads: g.TotalThreads(), FullOccupancyTime: sim.Millisecond})
		dur = p.Now() - t0
	})
	e.Run()
	if dur != sim.Millisecond {
		t.Fatalf("idle-GPU kernel took %v, want 1ms", dur)
	}
}

func TestKernelSlowsWhenThreadsPinned(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.KernelLaunchOverhead = 0
	g := New(e, "gpu0", cfg, mem.NewSpace())
	var dur sim.Time
	e.Go("io", func(p *sim.Proc) {
		_, release := g.PinThreads(p, g.TotalThreads()/2)
		p.Sleep(10 * sim.Millisecond)
		release()
	})
	e.Go("app", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond) // let io pin first
		t0 := p.Now()
		g.RunKernel(p, KernelSpec{Name: "k", Threads: g.TotalThreads(), FullOccupancyTime: sim.Millisecond})
		dur = p.Now() - t0
	})
	e.Run()
	if dur < 2*sim.Millisecond-sim.Microsecond {
		t.Fatalf("kernel with half the SMs took %v, want ~2ms", dur)
	}
}

func TestKernelSerializesWhenGPUFull(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.KernelLaunchOverhead = 0
	g := New(e, "gpu0", cfg, mem.NewSpace())
	var start sim.Time
	e.Go("io", func(p *sim.Proc) {
		_, release := g.PinThreads(p, g.TotalThreads())
		p.Sleep(5 * sim.Millisecond)
		release()
	})
	e.Go("app", func(p *sim.Proc) {
		p.Sleep(sim.Microsecond)
		g.RunKernel(p, KernelSpec{Name: "k", Threads: 64, FullOccupancyTime: sim.Millisecond})
		start = p.Now()
	})
	e.Run()
	if start < 5*sim.Millisecond {
		t.Fatalf("kernel finished at %v while GPU was fully pinned until 5ms", start)
	}
}

func TestKernelLaunchOverheadCharged(t *testing.T) {
	e := sim.New()
	g := newGPU(e) // default 4us overhead
	var dur sim.Time
	e.Go("app", func(p *sim.Proc) {
		t0 := p.Now()
		g.RunKernel(p, KernelSpec{Name: "k", Threads: 64, FullOccupancyTime: 0})
		dur = p.Now() - t0
	})
	e.Run()
	if dur != 4*sim.Microsecond {
		t.Fatalf("empty kernel took %v, want 4us launch overhead", dur)
	}
}

func TestComputeTime(t *testing.T) {
	g := newGPU(sim.New())
	// 312e12 FLOPs at 312 TFLOPS, 100% efficiency = 1 s.
	got := g.ComputeTime(312e12, 1.0)
	if math.Abs(float64(got-sim.Second)) > float64(sim.Millisecond) {
		t.Fatalf("ComputeTime = %v, want ~1s", got)
	}
}

func TestComputeTimeBadEfficiencyPanics(t *testing.T) {
	g := newGPU(sim.New())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for efficiency 0")
		}
	}()
	g.ComputeTime(1, 0)
}

func TestMeanSMUtilization(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.KernelLaunchOverhead = 0
	g := New(e, "gpu0", cfg, mem.NewSpace())
	e.Go("io", func(p *sim.Proc) {
		_, release := g.PinThreads(p, g.TotalThreads())
		p.Sleep(sim.Millisecond)
		release()
		p.Sleep(sim.Millisecond) // idle second half
	})
	e.Run()
	if u := g.MeanSMUtilization(); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("MeanSMUtilization = %g, want ~0.5", u)
	}
}

func TestMultipleGPUsDisjointWindows(t *testing.T) {
	e := sim.New()
	space := mem.NewSpace()
	cfgs := make([]Config, 3)
	var gpus []*GPU
	for i := range cfgs {
		cfgs[i] = DefaultConfig()
		cfgs[i].HBMWindow = WindowForInstance(i)
		gpus = append(gpus, New(e, "gpu"+string(rune('0'+i)), cfgs[i], space))
	}
	// Buffers from every GPU coexist in one address space.
	for i, g := range gpus {
		b := g.Alloc("buf", 1<<20)
		got, kind, err := space.Resolve(b.Addr, 1<<20)
		if err != nil || kind != mem.GPUHBM {
			t.Fatalf("gpu %d: resolve failed: %v %v", i, kind, err)
		}
		got[0] = byte(i + 1)
		if b.Bytes()[0] != byte(i+1) {
			t.Fatalf("gpu %d: aliasing broken", i)
		}
	}
}

func TestWindowForInstanceStride(t *testing.T) {
	if WindowForInstance(0) != HBMWindowBase {
		t.Fatal("instance 0 must use the default window")
	}
	if WindowForInstance(1)-WindowForInstance(0) < mem.Addr(DefaultConfig().MemBytes) {
		t.Fatal("window stride smaller than HBM capacity")
	}
}
