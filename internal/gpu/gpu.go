// Package gpu models an A100-class GPU at the granularity the paper's
// arguments need: an array of streaming multiprocessors whose resident
// thread slots are a shared resource, a compute-kernel cost model, and HBM
// device memory with real backing bytes that NVMe controllers can DMA into
// directly (the GDRCopy / nvidia_p2p_get_pages data plane).
//
// The central mechanic is thread-slot contention: BaM-style I/O submission
// pins hundreds of thousands of resident threads to keep SSDs saturated,
// which starves compute kernels of SMs and serializes I/O with computation
// (the paper's Issue 3). CAM pins none.
package gpu

import (
	"fmt"

	"camsim/internal/mem"
	"camsim/internal/sim"
	"camsim/internal/trace"
)

// Config describes the device.
type Config struct {
	// SMs is the number of streaming multiprocessors (A100: 108).
	SMs int
	// ThreadsPerSM is the resident thread capacity per SM (A100: 2048).
	ThreadsPerSM int
	// TFLOPS is the peak compute rate used by kernel cost models.
	TFLOPS float64
	// MemBytes is the HBM capacity (A100 80 GB).
	MemBytes int64
	// KernelLaunchOverhead is the host-side cost per kernel launch.
	KernelLaunchOverhead sim.Time
	// HBMWindow places this device's memory in the platform physical
	// map; zero uses the default window. Multi-GPU platforms give each
	// device a distinct window (see WindowForInstance).
	HBMWindow mem.Addr
}

// WindowForInstance returns a non-overlapping HBM window base for the i-th
// GPU on a platform (16 TiB stride leaves room for any HBM size).
func WindowForInstance(i int) mem.Addr {
	return HBMWindowBase + mem.Addr(i)*0x0000_1000_0000_0000
}

// DefaultConfig matches the paper's 80 GB PCIe A100.
func DefaultConfig() Config {
	return Config{
		SMs:                  108,
		ThreadsPerSM:         2048,
		TFLOPS:               312, // TF32 tensor-core rate the paper quotes
		MemBytes:             80 << 30,
		KernelLaunchOverhead: 4 * sim.Microsecond,
	}
}

// HBMWindowBase is where GPU memory lives in the simulated physical map,
// disjoint from host DRAM.
const HBMWindowBase mem.Addr = 0x2000_0000_0000_0000

// GPU is one device instance.
type GPU struct {
	Name string
	cfg  Config
	e    *sim.Engine

	// threads is the pool of resident thread slots across all SMs; both
	// compute kernels and (for BaM) I/O submission warps draw from it.
	threads *sim.Resource

	arena     *mem.Arena
	space     *mem.Space
	allocated int64
	tracer    *trace.Tracer
}

// SetTracer attaches an event tracer (nil disables tracing).
func (g *GPU) SetTracer(t *trace.Tracer) { g.tracer = t }

// New creates a GPU and claims its HBM window in the address space.
func New(e *sim.Engine, name string, cfg Config, space *mem.Space) *GPU {
	if cfg.SMs <= 0 || cfg.ThreadsPerSM <= 0 {
		panic("gpu: invalid config")
	}
	window := cfg.HBMWindow
	if window == 0 {
		window = HBMWindowBase
	}
	return &GPU{
		Name:    name,
		cfg:     cfg,
		e:       e,
		threads: e.NewResource(name+".threads", int64(cfg.SMs)*int64(cfg.ThreadsPerSM)),
		arena:   mem.NewArena(name+".hbm", window, cfg.MemBytes),
		space:   space,
	}
}

// Config returns the device configuration.
func (g *GPU) Config() Config { return g.cfg }

// TotalThreads reports the total resident thread capacity.
func (g *GPU) TotalThreads() int64 { return int64(g.cfg.SMs) * int64(g.cfg.ThreadsPerSM) }

// FreeThreads reports currently unoccupied thread slots.
func (g *GPU) FreeThreads() int64 { return g.threads.Available() }

// SMUtilization reports the instantaneous fraction of thread slots held.
func (g *GPU) SMUtilization() float64 {
	return float64(g.threads.InUse()) / float64(g.TotalThreads())
}

// MeanSMUtilization reports the time-averaged occupancy since t=0.
func (g *GPU) MeanSMUtilization() float64 { return g.threads.MeanUtilization() }

// Buffer is device memory registered for DMA. Its content is a payload:
// transfers into and out of it move references, and real bytes exist only
// after a consumer calls Bytes or MakeEager.
type Buffer struct {
	Name   string
	Addr   mem.Addr
	Pinned bool
	size   int64
	pay    *mem.Payload
	g      *GPU
}

// Alloc reserves device memory (cudaMalloc analogue).
func (g *GPU) Alloc(name string, n int64) *Buffer {
	return g.alloc(name, n, false)
}

// AllocPinned reserves device memory registered for peer-to-peer DMA
// (the CAM_alloc / GDRCopy path). In the simulation every HBM range is
// physically reachable, but drivers enforce the pinned contract the way
// real ones do.
func (g *GPU) AllocPinned(name string, n int64) *Buffer {
	return g.alloc(name, n, true)
}

func (g *GPU) alloc(name string, n int64, pinned bool) *Buffer {
	if g.allocated+n > g.cfg.MemBytes {
		panic(fmt.Sprintf("gpu: out of memory allocating %q (%d bytes)", name, n))
	}
	pay := mem.NewPayload(n, mem.DefaultEager())
	addr := g.arena.Alloc(n, 4096)
	g.space.RegisterPayload(g.Name+"."+name, addr, pay, mem.GPUHBM)
	g.allocated += n
	return &Buffer{Name: name, Addr: addr, Pinned: pinned, size: n, pay: pay, g: g}
}

// Free releases the buffer (cudaFree / CAM_free analogue) and recycles its
// payload — chunk references and any materialized backing — for future
// allocations on any GPU instance.
func (b *Buffer) Free() {
	b.g.space.Unregister(b.Addr)
	b.g.allocated -= b.size
	b.pay.Release()
	b.pay = nil
}

// Size reports the buffer length.
func (b *Buffer) Size() int64 { return b.size }

// Payload exposes the buffer's content for reference-passing transfers.
func (b *Buffer) Payload() *mem.Payload { return b.pay }

// Bytes materializes the buffer and returns its backing slice; call it
// again after a transfer into the buffer to re-synchronize. Writes through
// the slice become the buffer's content.
func (b *Buffer) Bytes() []byte { return b.pay.Bytes() }

// MakeEager materializes the buffer and pins it eager, so the returned
// slice tracks every subsequent transfer without re-calling Bytes. Queue
// rings and control regions parsed continuously by device models use this.
func (b *Buffer) MakeEager() []byte { return b.pay.MakeEager() }

// Allocated reports bytes currently allocated on the device.
func (g *GPU) Allocated() int64 { return g.allocated }

// PinThreads permanently occupies n thread slots (clamped to capacity)
// until the returned release function is called. BaM's submission/polling
// warps use this; the paper's Figure 4 is the resulting occupancy.
func (g *GPU) PinThreads(p *sim.Proc, n int64) (held int64, release func()) {
	if n > g.TotalThreads() {
		n = g.TotalThreads()
	}
	if n <= 0 {
		return 0, func() {}
	}
	g.threads.Acquire(p, n)
	return n, func() { g.threads.Release(n) }
}

// PinThreadsCallback is the callback-machine form of PinThreads: it reports
// the clamped slot count and whether it was acquired inline; if not, cb
// runs on wheel once the slots are held. Release with UnpinThreads(held).
func (g *GPU) PinThreadsCallback(n int64, wheel int, cb sim.Callback) (held int64, acquired bool) {
	if n > g.TotalThreads() {
		n = g.TotalThreads()
	}
	if n <= 0 {
		return 0, true
	}
	return n, g.threads.AcquireCallback(n, wheel, cb)
}

// UnpinThreads releases slots held via PinThreadsCallback.
func (g *GPU) UnpinThreads(n int64) {
	if n > 0 {
		g.threads.Release(n)
	}
}

// KernelSpec describes one compute kernel launch.
type KernelSpec struct {
	Name string
	// Threads is the kernel's maximum useful parallelism in resident
	// threads (grid size × block size, clamped to device capacity).
	Threads int64
	// FullOccupancyTime is how long the kernel runs when granted all the
	// threads it asked for; with fewer threads it runs proportionally
	// longer (elastic model).
	FullOccupancyTime sim.Time
	// MinThreads is the smallest grant the kernel can start with
	// (defaults to one 64-thread block).
	MinThreads int64
}

// RunKernel executes a compute kernel with elastic SM allocation: it takes
// whatever thread slots are free (at least MinThreads, blocking for them if
// necessary) and runs proportionally longer when it gets fewer than
// Threads. This reproduces both full-speed compute on an idle GPU and the
// serialization that happens when I/O warps hold the device.
func (g *GPU) RunKernel(p *sim.Proc, spec KernelSpec) {
	want := spec.Threads
	if want <= 0 {
		want = 64
	}
	if want > g.TotalThreads() {
		want = g.TotalThreads()
	}
	min := spec.MinThreads
	if min <= 0 {
		min = 64
	}
	if min > want {
		min = want
	}
	if g.cfg.KernelLaunchOverhead > 0 {
		p.Sleep(g.cfg.KernelLaunchOverhead)
	}
	// Take the free slots now, or block until the minimum is available.
	grant := g.threads.Available()
	if grant > want {
		grant = want
	}
	if grant < min || !g.threads.TryAcquire(grant) {
		// Not enough free (or FIFO waiters ahead): block for the
		// minimum, then top the grant up from whatever is free once
		// admitted — a real scheduler would dispatch the waiting blocks
		// onto SMs as they drain.
		g.threads.Acquire(p, min)
		grant = min
	}
	if grant < want {
		extra := g.threads.Available()
		if extra > want-grant {
			extra = want - grant
		}
		if extra > 0 && g.threads.TryAcquire(extra) {
			grant += extra
		}
	}
	dur := sim.Time(float64(spec.FullOccupancyTime) * float64(want) / float64(grant))
	g.tracer.Emit(trace.KernelStart, g.Name, spec.Name, grant)
	p.Sleep(dur)
	g.threads.Release(grant)
	g.tracer.Emit(trace.KernelEnd, g.Name, spec.Name, grant)
}

// ComputeTime converts a FLOP count into full-occupancy kernel time under
// the configured peak rate and an efficiency factor in (0,1].
func (g *GPU) ComputeTime(flops float64, efficiency float64) sim.Time {
	if efficiency <= 0 || efficiency > 1 {
		panic("gpu: efficiency must be in (0,1]")
	}
	sec := flops / (g.cfg.TFLOPS * 1e12 * efficiency)
	return sim.Time(sec * float64(sim.Second))
}
