package oskernel

import (
	"bytes"
	"fmt"
	"testing"

	"camsim/internal/hostmem"
	"camsim/internal/mem"
	"camsim/internal/nvme"
	"camsim/internal/pcie"
	"camsim/internal/sim"
	"camsim/internal/ssd"
)

type rig struct {
	e    *sim.Engine
	hm   *hostmem.Memory
	devs []*ssd.Device
}

func newRig(t testing.TB, nDevs int) *rig {
	t.Helper()
	e := sim.New()
	space := mem.NewSpace()
	fab := pcie.New(e, pcie.DefaultConfig())
	hm := hostmem.New(e, space, hostmem.DefaultConfig())
	var devs []*ssd.Device
	for i := 0; i < nDevs; i++ {
		cfg := ssd.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		d := ssd.New(e, fmt.Sprintf("nvme%d", i), cfg, fab, space)
		devs = append(devs, d)
	}
	return &rig{e: e, hm: hm, devs: devs}
}

func (r *rig) start() {
	for _, d := range r.devs {
		d.Start()
	}
}

func TestSyncReadAfterWrite(t *testing.T) {
	r := newRig(t, 1)
	s := NewStack(r.e, POSIX, DefaultConfig(POSIX), r.hm, r.devs)
	r.start()
	src := make([]byte, 8192)
	for i := range src {
		src[i] = byte(i % 251)
	}
	dst := make([]byte, 8192)
	r.e.Go("app", func(p *sim.Proc) {
		if st := s.WriteAt(p, 4096, src); st != nvme.StatusSuccess {
			t.Errorf("write status %v", st)
		}
		if st := s.ReadAt(p, 4096, dst); st != nvme.StatusSuccess {
			t.Errorf("read status %v", st)
		}
	})
	r.e.Run()
	if !bytes.Equal(src, dst) {
		t.Fatal("POSIX read-after-write mismatch")
	}
}

func TestRAID0StripingRoundTrip(t *testing.T) {
	r := newRig(t, 4)
	cfg := DefaultConfig(Libaio)
	s := NewStack(r.e, Libaio, cfg, r.hm, r.devs)
	r.start()
	// Span several stripes so data crosses all devices.
	n := int(cfg.StripeBytes) * 6
	src := make([]byte, n)
	rng := sim.NewRNG(99)
	for i := range src {
		src[i] = byte(rng.Uint64())
	}
	dst := make([]byte, n)
	r.e.Go("app", func(p *sim.Proc) {
		s.WriteAt(p, 0, src)
		s.ReadAt(p, 0, dst)
	})
	r.e.Run()
	if !bytes.Equal(src, dst) {
		t.Fatal("RAID0 round trip mismatch")
	}
	// All four devices must have seen writes.
	for i, d := range r.devs {
		if d.Stats().WriteCmds == 0 {
			t.Errorf("device %d received no writes — striping broken", i)
		}
	}
}

func TestLocateStriping(t *testing.T) {
	r := newRig(t, 3)
	cfg := DefaultConfig(POSIX)
	s := NewStack(r.e, POSIX, cfg, r.hm, r.devs)
	c := cfg.StripeBytes
	cases := []struct {
		off     int64
		wantDev int
		wantLBA uint64
	}{
		{0, 0, 0},
		{c, 1, 0},
		{2 * c, 2, 0},
		{3 * c, 0, uint64(c) / nvme.LBASize},
		{3*c + 512, 0, uint64(c)/nvme.LBASize + 1},
	}
	for _, tc := range cases {
		dev, lba := s.locate(tc.off)
		if dev != tc.wantDev || lba != tc.wantLBA {
			t.Errorf("locate(%d) = (%d,%d), want (%d,%d)", tc.off, dev, lba, tc.wantDev, tc.wantLBA)
		}
	}
}

func TestStripeCrossingSubmitPanics(t *testing.T) {
	r := newRig(t, 2)
	cfg := DefaultConfig(POSIX)
	s := NewStack(r.e, POSIX, cfg, r.hm, r.devs)
	r.start()
	panicked := false
	r.e.Go("app", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		s.Submit(p, &Request{Op: nvme.OpRead, Offset: cfg.StripeBytes - 512, Data: make([]byte, 1024)})
	})
	r.e.Run()
	if !panicked {
		t.Fatal("stripe-crossing Submit did not panic")
	}
}

func TestUnalignedSubmitPanics(t *testing.T) {
	r := newRig(t, 1)
	s := NewStack(r.e, POSIX, DefaultConfig(POSIX), r.hm, r.devs)
	r.start()
	panicked := false
	r.e.Go("app", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		s.Submit(p, &Request{Op: nvme.OpRead, Offset: 100, Data: make([]byte, 512)})
	})
	r.e.Run()
	if !panicked {
		t.Fatal("unaligned Submit did not panic")
	}
}

// measureIOPS drives a stack with many worker threads at 4 KiB random
// access and returns achieved IOPS.
func measureIOPS(t *testing.T, kind StackKind, op nvme.Opcode, nDevs int) float64 {
	t.Helper()
	r := newRig(t, nDevs)
	s := NewStack(r.e, kind, DefaultConfig(kind), r.hm, r.devs)
	r.start()
	const workers = 32
	const perWorker = 40
	total := 0
	rng := sim.NewRNG(7)
	span := int64(nDevs) * (1 << 30)
	for w := 0; w < workers; w++ {
		seed := rng.Uint64()
		r.e.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			lrng := sim.NewRNG(seed)
			buf := make([]byte, 4096)
			for i := 0; i < perWorker; i++ {
				off := (lrng.Int63n(span / 4096)) * 4096
				if op == nvme.OpRead {
					s.ReadAt(p, off, buf)
				} else {
					s.WriteAt(p, off, buf)
				}
				total++
			}
		})
	}
	end := r.e.Run()
	return float64(total) / end.Seconds()
}

func TestStackOrderingPOSIXSlowest(t *testing.T) {
	posix := measureIOPS(t, POSIX, nvme.OpRead, 1)
	aio := measureIOPS(t, Libaio, nvme.OpRead, 1)
	uringInt := measureIOPS(t, IOUringInt, nvme.OpRead, 1)
	uringPoll := measureIOPS(t, IOUringPoll, nvme.OpRead, 1)
	if !(posix < aio && aio < uringInt && uringInt < uringPoll) {
		t.Fatalf("stack ordering wrong: posix=%.0f aio=%.0f int=%.0f poll=%.0f",
			posix, aio, uringInt, uringPoll)
	}
	// Everything must sit below the device's 450K line (Fig 2a).
	if uringPoll >= 450_000 {
		t.Fatalf("io_uring poll %.0f IOPS reached the device line", uringPoll)
	}
	if posix < 100_000 || posix > 300_000 {
		t.Fatalf("POSIX read IOPS = %.0f, out of plausible band", posix)
	}
}

func TestWriteSlowerThanReadAllStacks(t *testing.T) {
	for _, k := range Kinds() {
		rd := measureIOPS(t, k, nvme.OpRead, 1)
		wr := measureIOPS(t, k, nvme.OpWrite, 1)
		if wr >= rd {
			t.Errorf("%v: write %.0f IOPS >= read %.0f IOPS", k, wr, rd)
		}
	}
}

func TestKernelPathDoesNotScaleWithDevices(t *testing.T) {
	one := measureIOPS(t, POSIX, nvme.OpRead, 1)
	many := measureIOPS(t, POSIX, nvme.OpRead, 4)
	// The serialized kernel path means RAID0 adds little (allow 25%).
	if many > one*1.25 {
		t.Fatalf("POSIX scaled with devices: 1 dev %.0f, 4 devs %.0f", one, many)
	}
}

func TestLayerBreakdownFSPlusIOMapOver34Pct(t *testing.T) {
	for _, k := range Kinds() {
		r := newRig(t, 1)
		s := NewStack(r.e, k, DefaultConfig(k), r.hm, r.devs)
		r.start()
		r.e.Go("app", func(p *sim.Proc) {
			buf := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				s.ReadAt(p, int64(i)*4096, buf)
			}
		})
		r.e.Run()
		bd := s.LayerBreakdown()
		if got := bd["filesystem"] + bd["iomap"]; got < 0.34 {
			t.Errorf("%v: fs+iomap = %.2f, want > 0.34 (paper Fig 3)", k, got)
		}
	}
}

func TestCPUCountersAccumulate(t *testing.T) {
	r := newRig(t, 1)
	s := NewStack(r.e, Libaio, DefaultConfig(Libaio), r.hm, r.devs)
	r.start()
	r.e.Go("app", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		for i := 0; i < 10; i++ {
			s.ReadAt(p, int64(i)*4096, buf)
		}
	})
	r.e.Run()
	if s.Stat.Requests != 10 {
		t.Fatalf("requests = %d", s.Stat.Requests)
	}
	if s.Stat.PerRequestInstructions() < 1000 {
		t.Fatalf("per-request instructions = %.0f, implausibly low", s.Stat.PerRequestInstructions())
	}
	if s.Stat.PerRequestCycles() <= s.Stat.PerRequestInstructions() {
		t.Fatal("kernel stack should have cycles > instructions (IPC < 1)")
	}
}

func TestDRAMTrafficIsTwicePayload(t *testing.T) {
	r := newRig(t, 1)
	s := NewStack(r.e, POSIX, DefaultConfig(POSIX), r.hm, r.devs)
	r.start()
	const n = 64 * 4096
	r.e.Go("app", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		for i := 0; i < 64; i++ {
			s.ReadAt(p, int64(i)*4096, buf)
		}
	})
	r.e.Run()
	if got := r.hm.TotalTraffic(); got != 2*n {
		t.Fatalf("DRAM traffic = %d, want %d (2x payload)", got, 2*n)
	}
}

func TestStackKindString(t *testing.T) {
	if POSIX.String() != "POSIX" || IOUringPoll.String() != "io_uring poll" {
		t.Fatal("StackKind.String broken")
	}
}
