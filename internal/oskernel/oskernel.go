// Package oskernel models the Linux kernel I/O stacks the paper profiles in
// Figures 2 and 3: POSIX pread/pwrite with O_DIRECT, libaio, and io_uring in
// interrupt and polling modes, plus the md-RAID0 striping layer used to
// aggregate multiple SSDs under one block device.
//
// Each request walks the paper's four layers — User, File system (logical
// block address retrieval), I/O mapping (page pin + BIO setup), and Block
// I/O — through a serialized kernel path whose per-layer costs determine
// both the achievable IOPS (Fig 2) and the time breakdown (Fig 3). Data is
// staged through host DRAM: the destination of the NVMe DMA is always a
// kernel bounce buffer in CPU memory, which is what forces the redundant
// copy of the paper's Issue 2 when the consumer is the GPU.
package oskernel

import (
	"fmt"
	"sort"

	"camsim/internal/cpustat"
	"camsim/internal/hostmem"
	"camsim/internal/mem"
	"camsim/internal/nvme"
	"camsim/internal/sim"
	"camsim/internal/ssd"
)

// StackKind selects which software I/O stack services requests.
type StackKind int

// The paper's four kernel I/O stacks.
const (
	POSIX StackKind = iota
	Libaio
	IOUringInt
	IOUringPoll
)

func (k StackKind) String() string {
	switch k {
	case POSIX:
		return "POSIX"
	case Libaio:
		return "libaio"
	case IOUringInt:
		return "io_uring int"
	case IOUringPoll:
		return "io_uring poll"
	default:
		return fmt.Sprintf("StackKind(%d)", int(k))
	}
}

// Kinds lists all stacks in presentation order.
func Kinds() []StackKind { return []StackKind{POSIX, Libaio, IOUringInt, IOUringPoll} }

// LayerCosts is the per-request kernel time spent in each layer for a
// 4 KiB request. IOMapPerPage is added per 4 KiB page to model pinning
// larger buffers.
type LayerCosts struct {
	User       sim.Time
	Filesystem sim.Time
	IOMap      sim.Time
	IOMapPage  sim.Time // additional per 4 KiB page beyond the first
	BlockIO    sim.Time
	Completion sim.Time // interrupt or completion-reap handling
}

// Total reports the per-request kernel time for a request of n bytes.
func (l LayerCosts) Total(n int64) sim.Time {
	return l.User + l.Filesystem + l.IOMap + l.IOMapPage*sim.Time(extraPages(n)) + l.BlockIO + l.Completion
}

func extraPages(n int64) int64 {
	pages := (n + 4095) / 4096
	if pages <= 1 {
		return 0
	}
	return pages - 1
}

// Config calibrates a kernel stack instance.
type Config struct {
	Read  LayerCosts
	Write LayerCosts
	// QueueDepth bounds in-flight commands per device.
	QueueDepth uint32
	// StripeBytes is the RAID0 chunk size across devices.
	StripeBytes int64
	// InterruptDelay is the completion signaling latency for
	// interrupt-driven stacks (POSIX, libaio, io_uring int); zero for
	// polled completion.
	InterruptDelay sim.Time
	// IPC is the instructions-per-cycle the kernel path achieves; the
	// interrupt-driven stacks run cache-cold at low IPC.
	IPC float64
	// PathInstructions is the instructions retired per 4 KiB request in
	// the kernel path (Fig 13's instruction bars).
	PathInstructions float64
}

// DefaultConfig returns the calibrated costs for a stack kind. The numbers
// land the paper's reported shapes: every stack sits below the device's
// 4 KiB line on one SSD; the File system + I/O mapping layers cost more
// than 34 % of per-request time; POSIX < libaio < io_uring-int <
// io_uring-poll.
func DefaultConfig(kind StackKind) Config {
	// Base layer costs per 4 KiB request. The serialized kernel portion
	// (everything but the User layer, 94 % of the total) caps IOPS at:
	//   POSIX  read 5.2us total (≈205K IOPS), write 8.6us (≈124K IOPS)
	//   libaio read 3.7us       (≈287K),      write 7.2us (≈148K)
	//   uringI read 3.3us       (≈322K),      write 6.8us (≈156K)
	//   uringP read 2.9us       (≈367K),      write 6.3us (≈169K)
	// versus the device's 450K read / 170K write 4 KiB lines.
	mk := func(total sim.Time, completionFrac float64) LayerCosts {
		// Split: user 6%, fs 18%, iomap 20%, block 1-(44%+completion).
		comp := sim.Time(float64(total) * completionFrac)
		user := total * 6 / 100
		fs := total * 18 / 100
		iomap := total * 20 / 100
		block := total - user - fs - iomap - comp
		return LayerCosts{
			User:       user,
			Filesystem: fs,
			IOMap:      iomap,
			IOMapPage:  400 * sim.Nanosecond,
			BlockIO:    block,
			Completion: comp,
		}
	}
	base := Config{
		QueueDepth:  64,
		StripeBytes: 128 << 10,
	}
	switch kind {
	case POSIX:
		base.Read = mk(5200*sim.Nanosecond, 0.24)
		base.Write = mk(8600*sim.Nanosecond, 0.24)
		base.InterruptDelay = 4 * sim.Microsecond
		base.IPC = 0.55
		base.PathInstructions = 5600
	case Libaio:
		base.Read = mk(3700*sim.Nanosecond, 0.24)
		base.Write = mk(7200*sim.Nanosecond, 0.24)
		base.InterruptDelay = 4 * sim.Microsecond
		base.IPC = 0.55
		base.PathInstructions = 5100
	case IOUringInt:
		base.Read = mk(3300*sim.Nanosecond, 0.24)
		base.Write = mk(6800*sim.Nanosecond, 0.24)
		base.InterruptDelay = 4 * sim.Microsecond
		base.IPC = 0.6
		base.PathInstructions = 4700
	case IOUringPoll:
		base.Read = mk(2900*sim.Nanosecond, 0.20)
		base.Write = mk(6300*sim.Nanosecond, 0.20)
		base.InterruptDelay = 0
		base.IPC = 1.1
		base.PathInstructions = 4300
	default:
		panic("oskernel: unknown stack kind")
	}
	return base
}

// Request is one in-flight kernel I/O. Callers either fill Data (the
// classic []byte form; Submit wraps it into a payload view) or set
// Pay/PayOff/N directly to move content by reference.
type Request struct {
	Op     nvme.Opcode
	Offset int64  // byte offset in the striped block device
	Data   []byte // user buffer ([]byte form); nil when Pay is set
	Pay    *mem.Payload
	PayOff int64
	N      int64
	Status nvme.Status
	Done   *sim.Signal

	dev  int
	cid  uint16
	wrap bool // Pay wraps Data and is released at completion
}

// Stack is one configured kernel I/O stack over a RAID0 array of SSDs.
type Stack struct {
	Kind StackKind
	cfg  Config
	e    *sim.Engine
	hm   *hostmem.Memory
	devs []*ssd.Device
	qps  []*nvme.QueuePair

	// kernelBusyUntil serializes the kernel submission path: the shared
	// fs/io_map/block layers that bound IOPS regardless of device count.
	kernelBusyUntil sim.Time

	slots    []*sim.Resource // per-device in-flight limiter
	inflight []map[uint16]*Request
	nextCID  []uint16

	// freeSubmit recycles SubmitAsync machines.
	freeSubmit []*submitMachine

	// bounce is the per-device kernel DMA staging area: one slot of
	// StripeBytes per command identifier, so concurrent commands never
	// share staging memory.
	bounce []*hostmem.Buffer

	Stat cpustat.Counters

	// layer time integrals for Fig 3
	LayerTime map[string]sim.Time
}

// NewStack builds a stack over devices; each device gets one kernel queue
// pair (rings live in host DRAM, as the kernel allocates them).
func NewStack(e *sim.Engine, kind StackKind, cfg Config, hm *hostmem.Memory, devs []*ssd.Device) *Stack {
	if len(devs) == 0 {
		panic("oskernel: no devices")
	}
	s := &Stack{
		Kind:      kind,
		cfg:       cfg,
		e:         e,
		hm:        hm,
		devs:      devs,
		LayerTime: make(map[string]sim.Time),
	}
	for i, d := range devs {
		sqMem := hm.Alloc(fmt.Sprintf("k%s.sq%d", kind, i), int64(cfg.QueueDepth)*nvme.SQESize)
		cqMem := hm.Alloc(fmt.Sprintf("k%s.cq%d", kind, i), int64(cfg.QueueDepth)*nvme.CQESize)
		// Ring memory is control state the queue pair reads word by word,
		// so it stays eagerly materialized.
		qp := d.CreateQueuePair(fmt.Sprintf("kernel-%d", kind), sqMem.MakeEager(), cqMem.MakeEager(), cfg.QueueDepth)
		s.qps = append(s.qps, qp)
		s.slots = append(s.slots, e.NewResource(fmt.Sprintf("kslots%d", i), int64(cfg.QueueDepth)-1))
		s.inflight = append(s.inflight, make(map[uint16]*Request))
		s.nextCID = append(s.nextCID, 0)
		s.bounce = append(s.bounce, hm.Alloc(fmt.Sprintf("k%s.bounce%d", kind, i),
			int64(cfg.QueueDepth)*cfg.StripeBytes))
	}
	for i := range devs {
		k := &kcqStep{s: s, dev: i}
		s.qps[i].CQ.OnPost.WaitCallback(0, k)
	}
	return s
}

// Devices reports the number of striped devices.
func (s *Stack) Devices() int { return len(s.devs) }

// StripeBytes reports the RAID0 chunk size (callers split I/O on it).
func (s *Stack) StripeBytes() int64 { return s.cfg.StripeBytes }

// locate maps a byte offset to (device, device LBA) under RAID0 striping.
func (s *Stack) locate(off int64) (dev int, lba uint64) {
	stripe := off / s.cfg.StripeBytes
	dev = int(stripe % int64(len(s.devs)))
	devStripe := stripe / int64(len(s.devs))
	devOff := devStripe*s.cfg.StripeBytes + off%s.cfg.StripeBytes
	return dev, uint64(devOff) / nvme.LBASize
}

func (s *Stack) costs(op nvme.Opcode) LayerCosts {
	if op == nvme.OpWrite {
		return s.cfg.Write
	}
	return s.cfg.Read
}

// Submit issues one request asynchronously. It charges the caller the User
// layer, walks the kernel path (serialized), pushes the SQE, and returns;
// r.Done fires when the completion has been delivered. The request must not
// cross a stripe boundary (callers split large I/O, as the block layer
// does).
func (s *Stack) Submit(p *sim.Proc, r *Request) {
	n := s.normalize(r)
	r.Done = s.e.NewSignal("kreq")
	c := s.costs(r.Op)

	// User layer runs on the caller.
	p.Sleep(c.User)
	s.LayerTime["user"] += c.User

	// The kernel path (fs → io_map → block, plus the eventual completion
	// handling reserved up front) is serialized across all submitters:
	// this shared path is what keeps every kernel stack below the device
	// line regardless of thread count.
	iomap := c.IOMap + c.IOMapPage*sim.Time(extraPages(n))
	kcost := c.Filesystem + iomap + c.BlockIO + c.Completion
	start := s.e.Now()
	if s.kernelBusyUntil > start {
		start = s.kernelBusyUntil
	}
	end := start + kcost
	s.kernelBusyUntil = end
	s.LayerTime["filesystem"] += c.Filesystem
	s.LayerTime["iomap"] += iomap
	s.LayerTime["blockio"] += c.BlockIO
	s.LayerTime["completion"] += c.Completion
	p.SleepUntil(end)

	instr := s.cfg.PathInstructions + 120*float64(extraPages(n))
	if r.Op == nvme.OpWrite {
		// The write path touches the page cache bypass and FUA logic.
		instr *= 1.12
	}
	s.Stat.Charge(instr, s.cfg.IPC)

	dev, lba := s.locate(r.Offset)
	r.dev = dev

	// Respect the in-flight bound (kernel tag allocation).
	s.slots[dev].Acquire(p, 1)

	cid := s.allocCID(dev)
	r.cid = cid
	s.inflight[dev][cid] = r

	// The DMA target is this command's staging slot in host DRAM. Writes
	// stage the payload in first (two DRAM crossings counting the device's
	// later DMA read); reads account their crossings at completion.
	if r.Op == nvme.OpWrite {
		s.bounceStage(r, true)
	}
	sqe := nvme.SQE{
		Opcode: r.Op,
		CID:    cid,
		NSID:   1,
		PRP1:   uint64(s.bounce[dev].Addr) + uint64(int64(cid)*s.cfg.StripeBytes),
		SLBA:   lba,
		NLB:    uint32(n / nvme.LBASize),
	}
	if err := s.qps[dev].SQ.Push(sqe); err != nil {
		panic("oskernel: SQ overflow despite slot limiter: " + err.Error())
	}
	s.devs[dev].Ring(s.qps[dev])
}

// SubmitAsync is the callback-machine form of Submit: it walks the same
// user → serialized-kernel-path → tag-allocation phases through scheduled
// callbacks and runs onSubmitted (engine-callback context) once the SQE has
// been pushed and the doorbell rung. r.Done fires when the completion has
// been delivered, exactly as with Submit.
func (s *Stack) SubmitAsync(r *Request, onSubmitted sim.Callback) {
	s.normalize(r)
	r.Done = s.e.NewSignal("kreq")
	c := s.costs(r.Op)

	m := s.getSubmit()
	m.r, m.onSubmitted = r, onSubmitted

	// User layer runs on the caller.
	s.LayerTime["user"] += c.User
	m.phase = smKernel
	s.e.ScheduleCallback(c.User, m)
}

// submitMachine phases.
const (
	smKernel  uint8 = iota // user layer slept; claim the kernel window
	smSlot                 // kernel path slept; acquire a device tag
	smGranted              // tag granted; push the SQE
)

// submitMachine carries one SubmitAsync through the kernel path.
type submitMachine struct {
	s           *Stack
	r           *Request
	phase       uint8
	onSubmitted sim.Callback
}

func (s *Stack) getSubmit() *submitMachine {
	if k := len(s.freeSubmit); k > 0 {
		m := s.freeSubmit[k-1]
		s.freeSubmit = s.freeSubmit[:k-1]
		return m
	}
	return &submitMachine{s: s} //camlint:allow hotalloc -- pool miss grows to the concurrency high-water mark, then reuses
}

// Run advances the submission one phase (engine-callback context).
//
//camlint:hotpath
func (m *submitMachine) Run() {
	s, r := m.s, m.r
	switch m.phase {
	case smKernel:
		n := r.N
		c := s.costs(r.Op)
		// The kernel path (fs → io_map → block, plus the eventual
		// completion handling reserved up front) is serialized across all
		// submitters — claimed here, after the user layer, exactly where
		// the synchronous path claims it.
		iomap := c.IOMap + c.IOMapPage*sim.Time(extraPages(n))
		kcost := c.Filesystem + iomap + c.BlockIO + c.Completion
		start := s.e.Now()
		if s.kernelBusyUntil > start {
			start = s.kernelBusyUntil
		}
		end := start + kcost
		s.kernelBusyUntil = end
		s.LayerTime["filesystem"] += c.Filesystem
		s.LayerTime["iomap"] += iomap
		s.LayerTime["blockio"] += c.BlockIO
		s.LayerTime["completion"] += c.Completion
		m.phase = smSlot
		s.e.ScheduleCallback(end-s.e.Now(), m)

	case smSlot:
		n := r.N
		instr := s.cfg.PathInstructions + 120*float64(extraPages(n))
		if r.Op == nvme.OpWrite {
			instr *= 1.12
		}
		s.Stat.Charge(instr, s.cfg.IPC)
		dev, _ := s.locate(r.Offset)
		r.dev = dev
		m.phase = smGranted
		// Respect the in-flight bound (kernel tag allocation).
		if !s.slots[dev].AcquireCallback(1, 0, m) {
			return
		}
		m.Run()

	case smGranted:
		n := r.N
		_, lba := s.locate(r.Offset)
		dev := r.dev
		cid := s.allocCID(dev)
		r.cid = cid
		s.inflight[dev][cid] = r
		if r.Op == nvme.OpWrite {
			s.bounceStage(r, true)
		}
		sqe := nvme.SQE{
			Opcode: r.Op,
			CID:    cid,
			NSID:   1,
			PRP1:   uint64(s.bounce[dev].Addr) + uint64(int64(cid)*s.cfg.StripeBytes),
			SLBA:   lba,
			NLB:    uint32(n / nvme.LBASize),
		}
		if err := s.qps[dev].SQ.Push(sqe); err != nil {
			panic("oskernel: SQ overflow despite slot limiter: " + err.Error())
		}
		s.devs[dev].Ring(s.qps[dev])
		onSubmitted := m.onSubmitted
		m.r, m.onSubmitted = nil, nil
		s.freeSubmit = append(s.freeSubmit, m) //camlint:allow hotalloc -- amortized free-list growth
		onSubmitted.Run()
	}
}

// normalize validates a request, wraps a []byte buffer into a payload view
// when needed, and reports the request length. The request must not cross a
// stripe boundary (callers split large I/O, as the block layer does).
func (s *Stack) normalize(r *Request) int64 {
	n := r.N
	if r.Pay == nil {
		n = int64(len(r.Data))
	}
	if n == 0 || n%nvme.LBASize != 0 {
		panic("oskernel: request length must be a positive multiple of 512")
	}
	if r.Offset%nvme.LBASize != 0 {
		panic("oskernel: offset must be 512-aligned")
	}
	if r.Offset/s.cfg.StripeBytes != (r.Offset+n-1)/s.cfg.StripeBytes {
		panic("oskernel: request crosses RAID0 stripe boundary")
	}
	if r.Pay == nil {
		r.Pay, r.PayOff, r.N, r.wrap = mem.WrapBytes(r.Data), 0, n, true
	}
	return n
}

// bounceStage moves request content between the user payload and command
// cid's staging slot on the request's device — the kernel bounce copy of
// the paper's Issue 2. It is the single audited staging helper: content
// moves by reference (PayloadCopy), and both DRAM crossings are charged
// (the copy itself plus the device DMA on the other side of the slot).
// toSlot selects the direction: payload→slot for writes, slot→payload for
// read copy-out.
//
//camlint:hotpath
func (s *Stack) bounceStage(r *Request, toSlot bool) {
	off := int64(r.cid) * s.cfg.StripeBytes
	bp := s.bounce[r.dev].Payload()
	if toSlot {
		mem.PayloadCopy(bp, off, r.Pay, r.PayOff, r.N)
	} else {
		mem.PayloadCopy(r.Pay, r.PayOff, bp, off, r.N)
	}
	s.hm.ReserveTraffic(2 * r.N)
}

// allocCID hands out a free command identifier in [0, QueueDepth); the
// in-flight limiter guarantees one exists.
func (s *Stack) allocCID(dev int) uint16 {
	for i := uint32(0); i < s.cfg.QueueDepth; i++ {
		cid := (s.nextCID[dev] + uint16(i)) % uint16(s.cfg.QueueDepth)
		if _, busy := s.inflight[dev][cid]; !busy {
			s.nextCID[dev] = cid + 1
			return cid
		}
	}
	panic("oskernel: no free CID despite slot limiter")
}

// kcqStep reaps completions for one device as a callback state machine
// parked on the CQ doorbell: interrupt-driven stacks add the interrupt
// latency through pooled delivery records; the polled stack reaps inline.
type kcqStep struct {
	s   *Stack
	dev int
	// free recycles interrupt-delivery records so the steady-state
	// completion path does not allocate.
	free []*kDeliver
}

// kDeliver carries one interrupt-delayed completion delivery.
type kDeliver struct {
	k      *kcqStep
	r      *Request
	cid    uint16
	status nvme.Status
}

// Run finishes the delayed delivery (engine-callback context). The record
// recycles before the copy-out so delivery can park a fresh one
// immediately.
//
//camlint:hotpath
func (d *kDeliver) Run() {
	k, r, cid, status := d.k, d.r, d.cid, d.status
	d.r = nil
	k.free = append(k.free, d) //camlint:allow hotalloc -- amortized free-list growth
	k.deliver(r, cid, status)
}

// Run drains the device CQ and re-arms the doorbell wait (engine-callback
// context).
//
//camlint:hotpath
func (k *kcqStep) Run() {
	s := k.s
	qp := s.qps[k.dev]
	if qp.CQ.OnPost.Fired() {
		qp.CQ.OnPost.Reset()
	}
	for {
		cqe, ok := qp.CQ.Poll()
		if !ok {
			qp.CQ.OnPost.WaitCallback(0, k)
			return
		}
		r := s.inflight[k.dev][cqe.CID]
		if r == nil {
			panic("oskernel: completion for unknown CID")
		}
		if s.cfg.InterruptDelay > 0 {
			// Interrupt delivery adds latency (and stall-heavy cycles)
			// but interrupts fan out across cores, so it does not
			// serialize completions.
			s.Stat.ChargeCycles(cpustat.TimeToCycles(s.cfg.InterruptDelay) * 0.3)
			d := k.getDeliver()
			d.r, d.cid, d.status = r, cqe.CID, cqe.Status
			s.e.ScheduleCallback(s.cfg.InterruptDelay, d)
		} else {
			k.deliver(r, cqe.CID, cqe.Status)
		}
	}
}

// getDeliver returns a recycled (or fresh) delivery record.
func (k *kcqStep) getDeliver() *kDeliver {
	if n := len(k.free); n > 0 {
		d := k.free[n-1]
		k.free = k.free[:n-1]
		return d
	}
	return &kDeliver{k: k} //camlint:allow hotalloc -- pool miss grows to the concurrency high-water mark, then reuses
}

// deliver finishes one completion: staging copy-out, accounting, tag and
// slot release, Done signal.
//
//camlint:hotpath
func (k *kcqStep) deliver(r *Request, cid uint16, status nvme.Status) {
	s, dev := k.s, k.dev
	// The CID (and its bounce slot) stays reserved until the copy-out
	// finishes, so a reissued command cannot clobber it.
	delete(s.inflight[dev], cid)
	if r.Op == nvme.OpRead {
		// DMA landed in the staging slot: one DRAM crossing for the DMA
		// write, one for the copy-to-user read.
		s.bounceStage(r, false)
	}
	if r.wrap {
		r.Pay.Release()
		r.Pay, r.wrap = nil, false
	}
	r.Status = status
	s.Stat.Done(1)
	s.slots[dev].Release(1)
	r.Done.Fire()
}

// ReadAt performs a synchronous read of len(data) bytes at off (pread).
func (s *Stack) ReadAt(p *sim.Proc, off int64, data []byte) nvme.Status {
	pay := mem.WrapBytes(data)
	st := s.syncIO(p, nvme.OpRead, off, pay, 0, int64(len(data)))
	pay.Release()
	return st
}

// WriteAt performs a synchronous write (pwrite).
func (s *Stack) WriteAt(p *sim.Proc, off int64, data []byte) nvme.Status {
	pay := mem.WrapBytes(data)
	st := s.syncIO(p, nvme.OpWrite, off, pay, 0, int64(len(data)))
	pay.Release()
	return st
}

// ReadAtP is ReadAt for payload content: n bytes at off land in pay at
// payOff by reference.
func (s *Stack) ReadAtP(p *sim.Proc, off int64, pay *mem.Payload, payOff, n int64) nvme.Status {
	return s.syncIO(p, nvme.OpRead, off, pay, payOff, n)
}

// WriteAtP is WriteAt for payload content.
func (s *Stack) WriteAtP(p *sim.Proc, off int64, pay *mem.Payload, payOff, n int64) nvme.Status {
	return s.syncIO(p, nvme.OpWrite, off, pay, payOff, n)
}

func (s *Stack) syncIO(p *sim.Proc, op nvme.Opcode, off int64, pay *mem.Payload, payOff, n int64) nvme.Status {
	// Split on stripe boundaries like the block layer would; md-RAID0
	// submits the per-stripe bios in parallel and the syscall returns
	// when the last completes (the kernel path itself stays serialized
	// in Submit).
	st := nvme.StatusSuccess
	var reqs []*Request
	for n > 0 {
		chunk := s.cfg.StripeBytes - off%s.cfg.StripeBytes
		if chunk > n {
			chunk = n
		}
		r := &Request{Op: op, Offset: off, Pay: pay, PayOff: payOff, N: chunk}
		s.Submit(p, r)
		reqs = append(reqs, r)
		off += chunk
		payOff += chunk
		n -= chunk
	}
	for _, r := range reqs {
		p.Wait(r.Done)
		if r.Status != nvme.StatusSuccess {
			st = r.Status
		}
	}
	return st
}

// LayerBreakdown reports the fraction of total accounted time spent in each
// of the paper's four layers (completion folded into Block I/O would hide
// it, so it is reported separately).
func (s *Stack) LayerBreakdown() map[string]float64 {
	layers := make([]string, 0, len(s.LayerTime))
	for k := range s.LayerTime {
		layers = append(layers, k)
	}
	sort.Strings(layers)
	var total sim.Time
	for _, k := range layers {
		total += s.LayerTime[k]
	}
	out := make(map[string]float64, len(s.LayerTime))
	if total == 0 {
		return out
	}
	for _, k := range layers {
		out[k] = float64(s.LayerTime[k]) / float64(total)
	}
	return out
}
