package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "longer-name") || !strings.Contains(out, "2.5") {
		t.Fatalf("missing cells:\n%s", out)
	}
	// Header and rows share column start offsets.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 1)
	csv := tb.CSV()
	if csv != "a,b\nx,1\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestFigureMergesXValues(t *testing.T) {
	f := NewFigure("fig", "n", "gbps")
	s1 := f.NewSeries("cam")
	s2 := f.NewSeries("bam")
	s1.Add(1, 2.0)
	s1.Add(2, 4.0)
	s2.Add(2, 3.5)
	out := f.String()
	if !strings.Contains(out, "cam") || !strings.Contains(out, "bam") {
		t.Fatalf("series headers missing:\n%s", out)
	}
	if !strings.Contains(out, "3.5") {
		t.Fatalf("second series value missing:\n%s", out)
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[float64]string{
		512:             "512B",
		2048:            "2.00KiB",
		3 << 20:         "3.00MiB",
		1.5 * (1 << 30): "1.50GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestGBps(t *testing.T) {
	if got := GBps(21e9); got != "21.00GB/s" {
		t.Fatalf("GBps = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4096) != "4096" {
		t.Fatal("integral floats should render without decimals")
	}
	if trimFloat(1.25) != "1.25" {
		t.Fatalf("got %s", trimFloat(1.25))
	}
}
