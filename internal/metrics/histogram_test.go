package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if h.Percentile(50) != 50 {
		t.Fatalf("p50 = %g", h.Percentile(50))
	}
	if h.Percentile(99) != 99 {
		t.Fatalf("p99 = %g", h.Percentile(99))
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramAddAfterSort(t *testing.T) {
	h := NewHistogram("x")
	h.Add(5)
	_ = h.Percentile(50) // forces sort
	h.Add(1)
	if h.Min() != 1 {
		t.Fatal("sample added after sort lost ordering")
	}
}

func TestHistogramEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty percentile")
		}
	}()
	NewHistogram("e").Percentile(50)
}

func TestHistogramBadPercentilePanics(t *testing.T) {
	h := NewHistogram("b")
	h.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on p=0")
		}
	}()
	h.Percentile(0)
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram("lat")
	h.Add(2)
	s := h.Summary("us")
	if s == "" || s == "lat: no samples" {
		t.Fatalf("summary = %q", s)
	}
	if NewHistogram("e").Summary("us") != "e: no samples" {
		t.Fatal("empty summary wrong")
	}
}

// Property: percentile is monotone and bounded by min/max.
func TestHistogramPercentileMonotoneQuick(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		h := NewHistogram("q")
		for _, v := range vals {
			h.Add(v)
		}
		prev := math.Inf(-1)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return h.Min() == sorted[0] && h.Max() == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
