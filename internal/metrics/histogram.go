package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram collects latency-style samples with exact percentile
// reporting. Experiments use it to report request/batch latency
// distributions next to the paper's mean-based figures.
type Histogram struct {
	name    string
	samples []float64
	sorted  bool
}

// NewHistogram creates an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name reports the histogram's label.
func (h *Histogram) Name() string { return h.name }

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean reports the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Percentile reports the p-th percentile (0 < p <= 100) by
// nearest-rank; it panics on an empty histogram or out-of-range p.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		panic("metrics: Percentile of empty histogram " + h.name)
	}
	if p <= 0 || p > 100 {
		panic("metrics: percentile out of range")
	}
	h.sort()
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Min reports the smallest sample.
func (h *Histogram) Min() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max reports the largest sample.
func (h *Histogram) Max() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Summary renders "name: n=… mean=… p50=… p99=… max=…" with a unit label.
func (h *Histogram) Summary(unit string) string {
	if len(h.samples) == 0 {
		return fmt.Sprintf("%s: no samples", h.name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.3g%s p50=%.3g%s p99=%.3g%s max=%.3g%s",
		h.name, h.Count(), h.Mean(), unit,
		h.Percentile(50), unit, h.Percentile(99), unit, h.Max(), unit)
	return b.String()
}
