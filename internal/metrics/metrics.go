// Package metrics renders experiment results the way the paper reports
// them: aligned tables for per-configuration numbers and series for
// figure-style sweeps.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one line of a figure: named (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes, rendered as a table with one
// column per series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds and returns a named series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned table: the x column then one
// column per series. Series may have disjoint x values; missing cells are
// blank.
func (f *Figure) String() string {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	// Collect x values in first-seen order.
	var xs []float64
	seen := map[float64]int{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if _, ok := seen[x]; !ok {
				seen[x] = len(xs)
				xs = append(xs, x)
			}
		}
	}
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), cols...)
	for _, x := range xs {
		row := make([]any, 1+len(f.Series))
		row[0] = trimFloat(x)
		for si, s := range f.Series {
			row[si+1] = ""
			for i, sx := range s.X {
				if sx == x {
					row[si+1] = trimFloat(s.Y[i])
					break
				}
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Counters is an ordered list of named integer counters: insertion order is
// render order, so fault/recovery tables and determinism fingerprints come
// out byte-identical on every run (a Go map would not).
type Counters struct {
	names []string
	vals  []uint64
}

// Add appends (or accumulates into) the named counter.
func (c *Counters) Add(name string, v uint64) {
	for i, n := range c.names {
		if n == name {
			c.vals[i] += v
			return
		}
	}
	c.names = append(c.names, name)
	c.vals = append(c.vals, v)
}

// Get reports the named counter's value (0 when absent).
func (c *Counters) Get(name string) uint64 {
	for i, n := range c.names {
		if n == name {
			return c.vals[i]
		}
	}
	return 0
}

// Len reports how many counters are held.
func (c *Counters) Len() int { return len(c.names) }

// String renders "name=value" pairs in insertion order, space-separated.
func (c *Counters) String() string {
	var b strings.Builder
	for i, n := range c.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.vals[i])
	}
	return b.String()
}

// Table renders the counters as a two-column table.
func (c *Counters) Table(title string) *Table {
	t := NewTable(title, "counter", "value")
	for i, n := range c.names {
		t.AddRow(n, c.vals[i])
	}
	return t
}

// Bytes formats a byte count human-readably.
func Bytes(n float64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2fTiB", n/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", n/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", n/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", n)
	}
}

// GBps formats a bytes/s rate in decimal GB/s as the paper does.
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2fGB/s", bytesPerSec/1e9)
}
