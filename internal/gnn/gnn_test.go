package gnn

import (
	"testing"
	"testing/quick"

	"camsim/internal/bam"
	"camsim/internal/cam"
	"camsim/internal/platform"
	"camsim/internal/sim"
)

func TestFeatBytesRounding(t *testing.T) {
	cases := []struct {
		dim  int
		want int64
	}{{128, 512}, {1024, 4096}, {100, 512}, {129, 1024}}
	for _, c := range cases {
		d := Dataset{FeatDim: c.dim}
		if got := d.FeatBytes(); got != c.want {
			t.Errorf("FeatBytes(dim=%d) = %d, want %d", c.dim, got, c.want)
		}
	}
}

func TestPaperDatasets(t *testing.T) {
	p := Paper100M()
	if p.NumNodes != 111_059_956 || p.FeatDim != 128 {
		t.Fatal("Paper100M constants wrong")
	}
	i := IGBFull()
	if i.NumNodes != 269_364_174 || i.FeatDim != 1024 {
		t.Fatal("IGB-full constants wrong")
	}
	if i.FeatBytes() != 4096 || p.FeatBytes() != 512 {
		t.Fatal("feature row sizes wrong")
	}
}

func TestNeighborDeterministicInRange(t *testing.T) {
	d := Paper100M().Scaled(10000)
	f := func(v uint64, i uint8) bool {
		a := d.Neighbor(v%d.NumNodes, int(i))
		b := d.Neighbor(v%d.NumNodes, int(i))
		return a == b && a < d.NumNodes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureRowDistinct(t *testing.T) {
	d := Paper100M()
	a := make([]byte, d.FeatBytes())
	b := make([]byte, d.FeatBytes())
	d.FeatureRow(1, a)
	d.FeatureRow(2, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different nodes produced identical feature rows")
	}
}

func TestSampleBatchUniqueAndDeterministic(t *testing.T) {
	d := Paper100M().Scaled(100000)
	cfg := DefaultTrainConfig()
	cfg.Batch = 64
	cfg.Fanouts = []int{5, 3}
	a := SampleBatch(d, cfg, 3)
	b := SampleBatch(d, cfg, 3)
	if len(a) != len(b) {
		t.Fatal("same iteration sampled different sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	seen := map[uint64]struct{}{}
	for _, v := range a {
		if v >= d.NumNodes {
			t.Fatal("sampled node out of range")
		}
		if _, dup := seen[v]; dup {
			t.Fatal("duplicate in sampled set")
		}
		seen[v] = struct{}{}
	}
	if len(a) < cfg.Batch {
		t.Fatalf("sampled %d < batch %d", len(a), cfg.Batch)
	}
	c := SampleBatch(d, cfg, 4)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different iterations sampled identical sets")
		}
	}
}

func TestComputeOrderingGATHeaviest(t *testing.T) {
	cfg := DefaultTrainConfig()
	for _, d := range []Dataset{Paper100M(), IGBFull()} {
		gcn := cfg.ComputeTimePerNode(GCN, d)
		gat := cfg.ComputeTimePerNode(GAT, d)
		sage := cfg.ComputeTimePerNode(GraphSAGE, d)
		if !(gat > gcn && gcn > sage) {
			t.Errorf("%s: compute order wrong: gat=%v gcn=%v sage=%v", d.Name, gat, gcn, sage)
		}
	}
}

func TestEffRateBoostForWideFeatures(t *testing.T) {
	cfg := DefaultTrainConfig()
	if cfg.EffRate(IGBFull()) <= cfg.EffRate(Paper100M()) {
		t.Fatal("wide features should raise effective compute rate")
	}
}

// smallSetup builds a small verifiable training environment.
func smallSetup(t *testing.T) (envG, envC *platform.Env, d Dataset, cfg TrainConfig) {
	t.Helper()
	d = Paper100M().Scaled(4000)
	cfg = DefaultTrainConfig()
	cfg.Batch = 32
	cfg.Fanouts = []int{4, 2}
	envG = platform.New(platform.Options{SSDs: 4})
	envC = platform.New(platform.Options{SSDs: 4})
	PrepopulateFeatures(envG, d)
	PrepopulateFeatures(envC, d)
	return
}

func TestGIDSTrainerVerifiedRoundTrip(t *testing.T) {
	env, _, d, cfg := smallSetup(t)
	sys := bam.New(env.E, bam.DefaultConfig(), env.GPU, env.Devs)
	tr := NewGIDSTrainer(env, d, GCN, cfg, sys)
	tr.Verify = true
	var b Breakdown
	env.E.Go("train", func(p *sim.Proc) {
		b = tr.RunIterations(p, 2)
	})
	env.Run()
	if b.Iters != 2 || b.Nodes == 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Sample == 0 || b.Extract == 0 || b.Train == 0 {
		t.Fatalf("missing stages: %+v", b)
	}
}

func TestCAMTrainerVerifiedRoundTrip(t *testing.T) {
	_, env, d, cfg := smallSetup(t)
	ccfg := cam.DefaultConfig(len(env.Devs))
	ccfg.BlockBytes = d.FeatBytes()
	mgr := cam.New(env.E, ccfg, env.GPU, env.HM, env.Space, env.Fab, env.Devs)
	tr := NewCAMTrainer(env, d, GCN, cfg, mgr)
	tr.Verify = true
	var b Breakdown
	env.E.Go("train", func(p *sim.Proc) {
		b = tr.RunIterations(p, 3)
	})
	env.Run()
	if b.Iters != 3 || b.Nodes == 0 {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestCAMFasterThanGIDS(t *testing.T) {
	d := Paper100M().Scaled(200000)
	cfg := DefaultTrainConfig()
	cfg.Batch = 128
	cfg.Fanouts = []int{10, 5}

	envG := platform.New(platform.Options{SSDs: 12})
	sys := bam.New(envG.E, bam.DefaultConfig(), envG.GPU, envG.Devs)
	trG := NewGIDSTrainer(envG, d, GCN, cfg, sys)
	var bG Breakdown
	envG.E.Go("t", func(p *sim.Proc) { bG = trG.RunIterations(p, 3) })
	envG.Run()

	envC := platform.New(platform.Options{SSDs: 12})
	ccfg := cam.DefaultConfig(len(envC.Devs))
	ccfg.BlockBytes = d.FeatBytes()
	ccfg.MaxBatch = 1 << 15
	mgr := cam.New(envC.E, ccfg, envC.GPU, envC.HM, envC.Space, envC.Fab, envC.Devs)
	trC := NewCAMTrainer(envC, d, GCN, cfg, mgr)
	var bC Breakdown
	envC.E.Go("t", func(p *sim.Proc) { bC = trC.RunIterations(p, 4) })
	envC.Run()

	perIterG := float64(bG.Total) / float64(bG.Iters)
	perIterC := float64(bC.Total) / float64(bC.Iters)
	speedup := perIterG / perIterC
	if speedup < 1.15 {
		t.Fatalf("CAM speedup = %.2fx over GIDS, expected > 1.15x (overlap)", speedup)
	}
	if speedup > 2.05 {
		t.Fatalf("CAM speedup = %.2fx — exceeds the theoretical overlap bound", speedup)
	}
	// The pipeline stall must be far below GIDS's serial extract time.
	if bC.Extract >= bG.Extract {
		t.Fatalf("CAM I/O stall %v not reduced vs GIDS extract %v", bC.Extract, bG.Extract)
	}
}

func TestGIDSExtractFractionMatchesFig1(t *testing.T) {
	// On the real (unscaled-node-behavior) ratios, GIDS spends 40-65 % in
	// feature extraction. Use a large scaled graph so dedup behaves.
	d := Paper100M().Scaled(1000000)
	cfg := DefaultTrainConfig()
	cfg.Batch = 128
	env := platform.New(platform.Options{SSDs: 12})
	sys := bam.New(env.E, bam.DefaultConfig(), env.GPU, env.Devs)
	for _, m := range Models() {
		tr := NewGIDSTrainer(env, d, m, cfg, sys)
		var b Breakdown
		env.E.Go("t", func(p *sim.Proc) { b = tr.RunIterations(p, 1) })
		env.Run()
		_, extract, _ := b.Fractions()
		if extract < 0.40 || extract > 0.70 {
			t.Errorf("%s: extract fraction = %.2f, want 0.40-0.70 (Fig 1)", m.Name, extract)
		}
	}
}
