package gnn

import (
	"fmt"

	"camsim/internal/bam"
	"camsim/internal/cam"
	"camsim/internal/gpu"
	"camsim/internal/platform"
	"camsim/internal/sim"
)

// Breakdown is the per-stage time accounting behind the paper's Figure 1.
type Breakdown struct {
	Sample  sim.Time
	Extract sim.Time // feature I/O (the "extracting" stage)
	Train   sim.Time
	Total   sim.Time // wall time of the measured iterations
	Iters   int
	Nodes   uint64 // unique nodes extracted
}

// Fractions reports each stage's share of the summed stage time.
func (b Breakdown) Fractions() (sample, extract, train float64) {
	sum := float64(b.Sample + b.Extract + b.Train)
	if sum == 0 {
		return 0, 0, 0
	}
	return float64(b.Sample) / sum, float64(b.Extract) / sum, float64(b.Train) / sum
}

// PrepopulateFeatures writes every node's reference feature row into the
// SSD array (direct store access, no simulated time — dataset loading is
// not part of any measured figure). Only feasible for scaled datasets.
func PrepopulateFeatures(env *platform.Env, d Dataset) {
	fb := d.FeatBytes()
	row := make([]byte, fb)
	n := uint64(len(env.Devs))
	for v := uint64(0); v < d.NumNodes; v++ {
		d.FeatureRow(v, row)
		dev := v % n
		lba := (v / n) * uint64(fb/512)
		if err := env.Devs[dev].Store().WriteLBA(lba, uint32(fb/512), row); err != nil {
			panic(err)
		}
	}
}

// VerifyFeatures checks that buf holds the reference rows for nodes (in
// order); it reports the first mismatching index or -1.
func VerifyFeatures(d Dataset, nodes []uint64, buf []byte) int {
	fb := int(d.FeatBytes())
	want := make([]byte, fb)
	for i, v := range nodes {
		d.FeatureRow(v, want)
		got := buf[i*fb : (i+1)*fb]
		for j := range want {
			if got[j] != want[j] {
				return i
			}
		}
	}
	return -1
}

// GIDSTrainer is the BaM-based baseline: per iteration, sampling, feature
// gathering (which pins the GPU), and training run back to back.
type GIDSTrainer struct {
	Env     *platform.Env
	Data    Dataset
	Model   Model
	Cfg     TrainConfig
	Sys     *bam.System
	arr     *bam.Array
	featBuf *gpu.Buffer
	// Verify makes each iteration check extracted rows against the
	// reference pattern (requires PrepopulateFeatures).
	Verify bool
}

// NewGIDSTrainer wires a trainer on the environment.
func NewGIDSTrainer(env *platform.Env, d Dataset, m Model, cfg TrainConfig, sys *bam.System) *GIDSTrainer {
	t := &GIDSTrainer{Env: env, Data: d, Model: m, Cfg: cfg, Sys: sys}
	t.arr = sys.NewArray(d.FeatBytes())
	t.featBuf = env.GPU.Alloc("gids.features", maxBatchBytes(d, cfg))
	return t
}

// Release frees the trainer's feature buffer. The worst-case sizing makes
// these the largest transient allocations in the GNN figures, so returning
// them to the device-memory pool keeps a multi-configuration sweep from
// churning a fresh multi-megabyte arena per measured point.
func (t *GIDSTrainer) Release() { t.featBuf.Free() }

// maxBatchBytes sizes the feature buffer for the worst-case unique count.
func maxBatchBytes(d Dataset, cfg TrainConfig) int64 {
	worst := cfg.Batch
	mult := 1
	for _, f := range cfg.Fanouts {
		mult *= f
		worst += cfg.Batch * mult
	}
	return int64(worst) * d.FeatBytes()
}

// RunIterations executes iters training iterations and returns the stage
// breakdown.
func (t *GIDSTrainer) RunIterations(p *sim.Proc, iters int) Breakdown {
	var b Breakdown
	b.Iters = iters
	start := p.Now()
	for it := 0; it < iters; it++ {
		// 1. Sampling kernel (graph structure in CPU memory).
		nodes := SampleBatch(t.Data, t.Cfg, it)
		b.Nodes += uint64(len(nodes))
		sT := t.Cfg.SampleCostPerNode * sim.Time(len(nodes))
		t0 := p.Now()
		t.Env.GPU.RunKernel(p, gpu.KernelSpec{
			Name: "sample", Threads: t.Env.GPU.TotalThreads(), FullOccupancyTime: sT,
		})
		b.Sample += p.Now() - t0

		// 2. Feature extraction through the synchronous BaM interface —
		// pins the SMs, so nothing else can use the GPU meanwhile.
		t0 = p.Now()
		t.arr.Gather(p, nodes, t.featBuf, 0)
		b.Extract += p.Now() - t0
		if t.Verify {
			if bad := VerifyFeatures(t.Data, nodes, t.featBuf.Bytes()); bad >= 0 {
				panic(fmt.Sprintf("gids: feature mismatch at sampled index %d", bad))
			}
		}

		// 3. Training kernel.
		cT := t.Cfg.ComputeTimePerNode(t.Model, t.Data) * sim.Time(len(nodes))
		t0 = p.Now()
		t.Env.GPU.RunKernel(p, gpu.KernelSpec{
			Name: "train", Threads: t.Env.GPU.TotalThreads(), FullOccupancyTime: cT,
		})
		b.Train += p.Now() - t0
	}
	b.Total = p.Now() - start
	return b
}

// CAMTrainer is the paper's pipelined trainer (Figs 6 and 7): while the GPU
// trains on batch k, CAM prefetches batch k+1's features into the other
// half of a double buffer.
type CAMTrainer struct {
	Env   *platform.Env
	Data  Dataset
	Model Model
	Cfg   TrainConfig
	M     *cam.Manager

	readBuf    *gpu.Buffer
	computeBuf *gpu.Buffer
	Verify     bool
}

// NewCAMTrainer wires the trainer; the manager's BlockBytes must equal the
// dataset's feature row size.
func NewCAMTrainer(env *platform.Env, d Dataset, m Model, cfg TrainConfig, mgr *cam.Manager) *CAMTrainer {
	t := &CAMTrainer{Env: env, Data: d, Model: m, Cfg: cfg, M: mgr}
	n := maxBatchBytes(d, cfg)
	t.readBuf = mgr.Alloc("cam.read", n)
	t.computeBuf = mgr.Alloc("cam.compute", n)
	return t
}

// Release frees the trainer's double buffer (see GIDSTrainer.Release).
func (t *CAMTrainer) Release() {
	t.readBuf.Free()
	t.computeBuf.Free()
}

// RunIterations executes iters pipelined iterations and returns the
// breakdown. One priming prefetch plus one warm-up iteration precede the
// measured window, so the numbers are steady-state per-iteration costs —
// a real epoch runs thousands of iterations, so its single pipeline fill
// is negligible, but it would dominate a 3-iteration measurement. Sample
// and Train report GPU kernel time; Extract reports the residual stall —
// the time the pipeline actually waited on I/O, which is what overlap
// eliminates.
func (t *CAMTrainer) RunIterations(p *sim.Proc, iters int) Breakdown {
	const warmup = 1
	var b Breakdown
	b.Iters = iters

	// Prime: sample and prefetch batch 0.
	nodes := SampleBatch(t.Data, t.Cfg, 0)
	sT := t.Cfg.SampleCostPerNode * sim.Time(len(nodes))
	t.Env.GPU.RunKernel(p, gpu.KernelSpec{Name: "sample", Threads: t.Env.GPU.TotalThreads(), FullOccupancyTime: sT})
	t.M.Prefetch(p, nodes, t.readBuf, 0)
	current := nodes

	iters += warmup
	start := p.Now()
	for it := 0; it < iters; it++ {
		if it == warmup {
			// Steady state reached: open the measured window.
			b.Sample, b.Extract, b.Train, b.Nodes = 0, 0, 0, 0
			start = p.Now()
		}
		// Wait for the in-flight prefetch (batch `it`) to land.
		t0 := p.Now()
		t.M.PrefetchSynchronize(p)
		b.Extract += p.Now() - t0

		// Swap buffers: the freshly filled read buffer becomes this
		// iteration's compute buffer (Fig 7 lines 5-6).
		t.readBuf, t.computeBuf = t.computeBuf, t.readBuf
		b.Nodes += uint64(len(current))
		if t.Verify {
			if bad := VerifyFeatures(t.Data, current, t.computeBuf.Bytes()); bad >= 0 {
				panic(fmt.Sprintf("cam: feature mismatch at sampled index %d", bad))
			}
		}

		// Sample batch it+1 and launch its prefetch before training, so
		// the I/O overlaps the training kernel. The final iteration has
		// no successor, so it samples and prefetches nothing.
		var next []uint64
		if it+1 < iters {
			next = SampleBatch(t.Data, t.Cfg, it+1)
			sT := t.Cfg.SampleCostPerNode * sim.Time(len(next))
			t0 = p.Now()
			t.Env.GPU.RunKernel(p, gpu.KernelSpec{Name: "sample", Threads: t.Env.GPU.TotalThreads(), FullOccupancyTime: sT})
			b.Sample += p.Now() - t0
			t.M.Prefetch(p, next, t.readBuf, 0)
		}

		// Train on the current batch while the prefetch proceeds.
		cT := t.Cfg.ComputeTimePerNode(t.Model, t.Data) * sim.Time(len(current))
		t0 = p.Now()
		t.Env.GPU.RunKernel(p, gpu.KernelSpec{Name: "train", Threads: t.Env.GPU.TotalThreads(), FullOccupancyTime: cT})
		b.Train += p.Now() - t0

		current = next
	}
	b.Total = p.Now() - start
	return b
}
