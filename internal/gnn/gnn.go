// Package gnn reproduces the paper's flagship application: out-of-core GNN
// training where node features live on the SSD array and the graph
// structure lives in CPU memory. It implements both trainers the paper
// compares:
//
//   - GIDSTrainer — the BaM-based GIDS baseline: sampling, feature
//     extraction through the synchronous bam.Array interface (which pins
//     the GPU's SMs), and training execute serially each iteration.
//   - CAMTrainer — the paper's pipeline (Figs 6 and 7): double-buffered
//     prefetch through the CAM API overlaps feature I/O with sampling and
//     training of the adjacent iterations.
//
// Datasets are the paper's Table IV entries with synthetic hash-generated
// topology: per-node neighbor lists are computed deterministically on the
// fly (no terabyte CSR needed), while feature bytes live in the simulated
// SSDs' real backing store so extraction correctness is verifiable.
package gnn

import (
	"encoding/binary"
	"math"

	"camsim/internal/nvme"
	"camsim/internal/sim"
)

// Dataset describes one evaluation graph (paper Table IV).
type Dataset struct {
	Name     string
	NumNodes uint64
	NumEdges uint64
	FeatDim  int
	// AvgDegree drives the synthetic neighbor generator.
	AvgDegree int
}

// Paper100M is ogbn-papers100M: 111 M nodes, 1.6 B edges, 128-dim features
// (512 B per node — the paper's fine-grained access case).
func Paper100M() Dataset {
	return Dataset{
		Name:      "Paper100M",
		NumNodes:  111_059_956,
		NumEdges:  1_615_685_872,
		FeatDim:   128,
		AvgDegree: 15,
	}
}

// IGBFull is IGB-full: 269 M nodes, 4 B edges, 1024-dim features (4 KiB per
// node, 1.1 TB of features).
func IGBFull() Dataset {
	return Dataset{
		Name:      "IGB-full",
		NumNodes:  269_364_174,
		NumEdges:  3_995_777_033,
		FeatDim:   1024,
		AvgDegree: 15,
	}
}

// Scaled returns a copy with the node count scaled down (for fast tests);
// feature dimension and per-node behavior are unchanged.
func (d Dataset) Scaled(nodes uint64) Dataset {
	d.NumNodes = nodes
	d.NumEdges = nodes * uint64(d.AvgDegree)
	return d
}

// FeatBytes reports the on-SSD bytes per node feature row, rounded up to
// the 512 B logical block.
func (d Dataset) FeatBytes() int64 {
	raw := int64(d.FeatDim) * 4
	if rem := raw % nvme.LBASize; rem != 0 {
		raw += nvme.LBASize - rem
	}
	return raw
}

// Neighbor returns the i-th synthetic neighbor of node v: a deterministic
// hash so the same (v, i) always yields the same edge, which is what lets
// the sampler run without materializing the edge list.
func (d Dataset) Neighbor(v uint64, i int) uint64 {
	x := v*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x % d.NumNodes
}

// FeatureRow fills row with node v's reference feature bytes: a
// deterministic pattern derived from v, used to pre-populate SSDs and to
// verify extraction end to end.
func (d Dataset) FeatureRow(v uint64, row []byte) {
	n := int(d.FeatBytes())
	_ = row[n-1]
	var w [8]byte
	for off := 0; off < n; off += 8 {
		binary.LittleEndian.PutUint64(w[:], v^uint64(off)*0x9e3779b97f4a7c15)
		copy(row[off:], w[:])
	}
}

// Model is a GNN architecture with its relative compute intensity
// (calibrated so GAT is the paper's "most intensive computation" case).
type Model struct {
	Name string
	// ComputeFactor scales per-node training FLOPs relative to GCN.
	ComputeFactor float64
}

// The paper's three models.
var (
	GCN       = Model{Name: "GCN", ComputeFactor: 1.0}
	GAT       = Model{Name: "GAT", ComputeFactor: 1.45}
	GraphSAGE = Model{Name: "GRAPHSAGE", ComputeFactor: 0.95}
)

// Models lists the evaluated models in paper order.
func Models() []Model { return []Model{GCN, GAT, GraphSAGE} }

// TrainConfig is the paper's Table V with simulation knobs.
type TrainConfig struct {
	// Batch is the seed-node minibatch size (paper: 8000; benchmarks use
	// a scaled value — per-node ratios are batch-invariant).
	Batch int
	// Fanouts is the neighbor sampling fan-out per hop (paper: 25, 10).
	Fanouts []int
	// HiddenDim is the model hidden size (paper: 128).
	HiddenDim int
	// SampleCostPerNode is the GPU time to sample one unique node
	// (UVA random access into CPU-resident graph structure).
	SampleCostPerNode sim.Time
	// BaseComputeRate is the effective training FLOP rate for 128-dim
	// inputs; wider features raise arithmetic intensity (see EffRate).
	BaseComputeRate float64
	// Seed drives sampling randomness.
	Seed uint64
}

// DefaultTrainConfig returns the paper's configuration with a scaled batch.
func DefaultTrainConfig() TrainConfig {
	// SampleCostPerNode covers the GPU-side neighbor sampling over
	// graph structure resident in CPU memory (UVA random accesses);
	// together with the compute rate it calibrates the Fig 1 stage
	// shares and caps the overlap speedup at the paper's 1.84x.
	return TrainConfig{
		Batch:             512,
		Fanouts:           []int{25, 10},
		HiddenDim:         128,
		SampleCostPerNode: 38 * sim.Nanosecond,
		BaseComputeRate:   1.0e12,
		Seed:              1,
	}
}

// EffRate reports the effective compute rate for a dataset: wider feature
// rows run denser kernels, so efficiency grows with log2(dim/128). The
// coefficient is calibrated so IGB-full training lands in the paper's
// "I/O slightly longer than computation" regime (§IV-C observation 3).
func (c TrainConfig) EffRate(d Dataset) float64 {
	boost := 1 + 0.5*math.Log2(float64(d.FeatDim)/128.0)/3.0
	if boost < 1 {
		boost = 1
	}
	return c.BaseComputeRate * boost
}

// FlopsPerNode reports the per-sampled-node training cost of a model on a
// dataset: forward+backward of the input projection and hidden layers.
func (c TrainConfig) FlopsPerNode(m Model, d Dataset) float64 {
	return 2 * float64(d.FeatDim+c.HiddenDim) * float64(c.HiddenDim) * m.ComputeFactor
}

// ComputeTimePerNode reports the modeled training time per sampled node.
func (c TrainConfig) ComputeTimePerNode(m Model, d Dataset) sim.Time {
	sec := c.FlopsPerNode(m, d) / c.EffRate(d)
	return sim.Time(sec * float64(sim.Second))
}

// SampleBatch draws one minibatch: seed nodes plus multi-hop fan-out
// neighbors, deduplicated. The result is the set of unique nodes whose
// features the iteration must extract.
func SampleBatch(d Dataset, c TrainConfig, iter int) []uint64 {
	rng := sim.NewRNG(c.Seed + uint64(iter)*0x9e3779b97f4a7c15)
	// Size the dedup set and result for the full multi-hop draw count up
	// front: the sampler runs once per training iteration, and growing the
	// map and slice incrementally dominated its profile.
	draws := c.Batch
	width := c.Batch
	for _, fan := range c.Fanouts {
		width *= fan
		draws += width
	}
	seen := make(map[uint64]struct{}, draws)
	frontier := make([]uint64, 0, c.Batch)
	unique := make([]uint64, 0, draws)
	add := func(v uint64) bool {
		if _, ok := seen[v]; ok {
			return false
		}
		seen[v] = struct{}{}
		unique = append(unique, v)
		return true
	}
	for len(frontier) < c.Batch {
		v := uint64(rng.Int63n(int64(d.NumNodes)))
		if add(v) {
			frontier = append(frontier, v)
		}
	}
	for _, fan := range c.Fanouts {
		next := make([]uint64, 0, len(frontier)*fan)
		for _, v := range frontier {
			for i := 0; i < fan; i++ {
				// Sample a random neighbor index within the node's
				// synthetic adjacency.
				idx := int(rng.Int63n(int64(d.AvgDegree * 4)))
				u := d.Neighbor(v, idx)
				next = append(next, u)
				add(u)
			}
		}
		frontier = next
	}
	return unique
}
