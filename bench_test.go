package camsim

import (
	"os"
	"strconv"
	"testing"

	"camsim/internal/harness"
)

// benchCfg picks quick workloads unless CAMSIM_FULL=1 requests paper scale.
// CAMSIM_SHARDS sets the shard worker count for clustered experiments
// (make bench exports it; unset or 1 = serial windows, same output).
func benchCfg() harness.RunConfig {
	shards, _ := strconv.Atoi(os.Getenv("CAMSIM_SHARDS"))
	return harness.RunConfig{Quick: os.Getenv("CAMSIM_FULL") != "1", Shards: shards}
}

// runExperiment executes one registered reproduction per benchmark
// iteration and logs its rendered output once, so `go test -bench` both
// times the experiment and emits the paper's rows/series. It also reports
// sim-ns/op — virtual nanoseconds simulated per iteration — so the bench
// history tracks the engine's simulation rate (sim-ns/op ÷ ns/op), not
// just wall time that shifts when workloads are re-scaled.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var out string
	var simTotal int64
	for i := 0; i < b.N; i++ {
		r := e.Run(benchCfg())
		simTotal += int64(r.SimElapsed)
		out = r.String()
	}
	b.ReportMetric(float64(simTotal)/float64(b.N), "sim-ns/op")
	if out != "" {
		b.Log("\n" + out)
	}
}

// Figure 1: GNN training time breakdown of the BaM-based GIDS baseline.
func BenchmarkFig1_GIDSBreakdown(b *testing.B) { runExperiment(b, "fig1") }

// Figure 2: 4 KB random read/write throughput of the kernel I/O stacks.
func BenchmarkFig2_KernelStacks(b *testing.B) { runExperiment(b, "fig2") }

// Figure 3: per-layer I/O time breakdown (User / fs / io_map / Block I/O).
func BenchmarkFig3_LayerBreakdown(b *testing.B) { runExperiment(b, "fig3") }

// Figure 4: GPU SM utilization BaM needs to saturate N SSDs.
func BenchmarkFig4_BaMSMUtil(b *testing.B) { runExperiment(b, "fig4") }

// Figure 8: I/O throughput of CAM vs BaM, SPDK, POSIX across SSD counts
// and access granularities (four sub-figures).
func BenchmarkFig8_Throughput(b *testing.B) { runExperiment(b, "fig8") }

// Figure 9: GNN training epoch time, CAM vs GIDS, three models × two
// datasets.
func BenchmarkFig9_GNNEpoch(b *testing.B) { runExperiment(b, "fig9") }

// Figure 10a: out-of-core mergesort time, CAM vs SPDK vs POSIX.
func BenchmarkFig10a_Sort(b *testing.B) { runExperiment(b, "fig10a") }

// Figure 10b,c: out-of-core GEMM throughput and execution time, CAM vs
// BaM vs GDS vs SPDK.
func BenchmarkFig10bc_GEMM(b *testing.B) { runExperiment(b, "fig10bc") }

// Figure 11: the synchronous-feeling CAM API vs raw asynchronous APIs.
func BenchmarkFig11_SyncVsAsync(b *testing.B) { runExperiment(b, "fig11") }

// Figure 12: throughput with one CPU thread controlling multiple SSDs.
func BenchmarkFig12_ThreadScaling(b *testing.B) { runExperiment(b, "fig12") }

// Figure 13: CPU instructions and cycles per request, CAM vs SPDK vs
// libaio.
func BenchmarkFig13_CPUCost(b *testing.B) { runExperiment(b, "fig13") }

// Figure 14: CPU memory bandwidth consumed per byte of SSD bandwidth.
func BenchmarkFig14_MemBandwidth(b *testing.B) { runExperiment(b, "fig14") }

// Figure 15: throughput under 2 vs 16 DRAM channels.
func BenchmarkFig15_MemChannels(b *testing.B) { runExperiment(b, "fig15") }

// Figure 16: access-granularity sweep with a non-contiguous destination.
func BenchmarkFig16_Granularity(b *testing.B) { runExperiment(b, "fig16") }

// Ablation: the sharded DES coordinator — a multi-host ring pipeline run
// through conservative lookahead windows (honors CAMSIM_SHARDS).
func BenchmarkAblShard_Cluster(b *testing.B) { runExperiment(b, "abl-shard") }

// Extension: SSD-backed LLM KV-cache serving — multi-session decode with
// block spill/fill through each management scheme. The only benchmark that
// writes to the array under load, so it tracks the scatter path too.
func BenchmarkKV_Serving(b *testing.B) { runExperiment(b, "kv") }

// Table I: architectural design comparison.
func BenchmarkTableI_Architecture(b *testing.B) { runExperiment(b, "tab1") }

// Table II: the CAM software API surface.
func BenchmarkTableII_API(b *testing.B) { runExperiment(b, "tab2") }

// Table III: the (simulated) experimental platform.
func BenchmarkTableIII_Platform(b *testing.B) { runExperiment(b, "tab3") }

// Table IV: evaluation datasets.
func BenchmarkTableIV_Datasets(b *testing.B) { runExperiment(b, "tab4") }

// Table V: GNN experiment configuration.
func BenchmarkTableV_GNNConfig(b *testing.B) { runExperiment(b, "tab5") }

// Table VI: lines of application code per SSD-management scheme, counted
// from this repository's sources with go/parser.
func BenchmarkTableVI_LinesOfCode(b *testing.B) { runExperiment(b, "tab6") }
