# Tier-1 gate: `make check` is exactly what CI runs, so a green local check
# means a green pipeline.

GO ?= go

.PHONY: all build test vet lint lint-strict lint-sarif race vuln check check-fast bench bench-smoke bench-smoke-fig10a bench-smoke-kv bench-diff cover cover-smoke profile

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs camlint, the repo's simulation-invariant analyzers
# (internal/lint): nodeterminism, errchecksim, eventtime, mutexheld,
# poollife, lockorder, dettaint, hotalloc, unusedallow. Findings recorded
# in lint_baseline.json are accepted; only new ones fail.
lint:
	$(GO) run ./cmd/camlint ./...

# lint-strict ignores the baseline: every finding (accepted or not) is
# printed and fails the target. Use it to review or burn down the baseline.
lint-strict:
	$(GO) run ./cmd/camlint -strict ./...

# lint-sarif emits the full (baseline-ignoring) findings as SARIF for code
# scanning UIs; CI uploads camlint.sarif as a workflow artifact.
lint-sarif:
	$(GO) run ./cmd/camlint -strict -format sarif ./... > camlint.sarif || true
	@echo "lint-sarif: wrote camlint.sarif"

race:
	$(GO) test -race ./...

# vuln runs govulncheck when installed (CI installs it; local runs skip
# gracefully since this repo must build without network access).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# check is the full gate. The race-enabled test run dominates (~10 min).
check: build vet lint race vuln

# check-fast trades the race detector for speed during local iteration.
check-fast: build vet lint test

# bench runs the figure reproductions once each under the benchmark
# harness and records ns/op, allocs/op, sim-ns/op, and the derived
# simulation rate in the next free BENCH_<n>.json — the repo's perf
# trajectory, one file per recorded run. Each benchmark runs in its own
# process: in-suite, a figure's wall time depends on its position (large
# arena allocations recycle the previous figure's dirty heap spans and
# pay a memclr a standalone run never sees), so per-figure processes are
# what make the numbers hermetic and comparable. The test binary is
# compiled once up front and reused for every figure: recompiling per
# figure burned CPU between measurements, which on burst-budgeted
# machines throttled the benchmarks that followed.
# CAMSIM_SHARDS (default 4) sets the shard workers for clustered
# experiments; output is identical at any value.
bench:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -c -o "$$tmp/camsim.test" . && \
	{ for b in $$("$$tmp/camsim.test" -test.list 'Benchmark(Fig|Abl|KV).*' | grep '^Benchmark'); do \
		CAMSIM_SHARDS=$${CAMSIM_SHARDS:-4} "$$tmp/camsim.test" -test.run XXX -test.bench "^$${b}\$$" -test.benchmem -test.benchtime 1x; \
	done; } | $(GO) run ./cmd/benchjson -o auto

# bench-smoke is the CI variant: same per-benchmark process structure,
# but the JSON goes to bench-smoke.json (discarded) instead of
# accumulating files. It then diffs the fresh run against the latest
# committed BENCH_<n>.json and warns (without failing) when any figure's
# simulation rate drops by more than 20% or its heap traffic (B/op) grows
# by more than 30% — the latter is the zero-copy data plane's regression
# gate: a copy site reverting to eager materialization shows up as a
# B/op jump long before it costs enough wall time to trip the sim-rate
# warning. Runs at CAMSIM_SHARDS=1 — serial shard windows — so the gate
# tracks the single-worker engine.
bench-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -c -o "$$tmp/camsim.test" . && \
	{ for b in $$("$$tmp/camsim.test" -test.list 'Benchmark.*' | grep '^Benchmark'); do \
		CAMSIM_SHARDS=1 "$$tmp/camsim.test" -test.run XXX -test.bench "^$${b}\$$" -test.benchmem -test.benchtime 1x; \
	done; } | $(GO) run ./cmd/benchjson -o bench-smoke.json
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -n "$$base" ]; then \
		$(GO) run ./cmd/benchjson -diff -warn-sim-regress 20 -warn-bytes-regress 30 "$$base" bench-smoke.json; \
	else \
		echo "bench-smoke: no committed BENCH_<n>.json baseline, skipping diff"; \
	fi
	@rm -f bench-smoke.json
	@$(MAKE) --no-print-directory bench-smoke-fig10a
	@$(MAKE) --no-print-directory bench-smoke-kv

# bench-smoke-fig10a is the focused single-shard sim-rate gate: one run of
# the Fig 10a sort benchmark pinned to CAMSIM_SHARDS=1, diffed against the
# committed baseline with the same warn-only 20% threshold. The full smoke
# pass above covers every figure, but this step names the single-worker
# engine explicitly so a single-shard dispatch regression is called out on
# its own line even if someone retunes the suite-wide smoke shard count.
bench-smoke-fig10a:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -c -o "$$tmp/camsim.test" . && \
	CAMSIM_SHARDS=1 "$$tmp/camsim.test" -test.run XXX -test.bench '^BenchmarkFig10a_Sort$$' -test.benchmem -test.benchtime 1x \
		| $(GO) run ./cmd/benchjson -o bench-smoke-fig10a.json
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -n "$$base" ]; then \
		$(GO) run ./cmd/benchjson -diff -warn-sim-regress 20 -warn-bytes-regress 30 "$$base" bench-smoke-fig10a.json; \
	else \
		echo "bench-smoke-fig10a: no committed BENCH_<n>.json baseline, skipping diff"; \
	fi
	@rm -f bench-smoke-fig10a.json

# bench-smoke-kv is the same focused single-shard gate for the KV-cache
# serving benchmark — the one workload that writes to the array under load,
# so a scatter-path or tier-bookkeeping perf regression shows up here even
# when the read-dominated figures stay flat. Warn-only, like its siblings.
bench-smoke-kv:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -c -o "$$tmp/camsim.test" . && \
	CAMSIM_SHARDS=1 "$$tmp/camsim.test" -test.run XXX -test.bench '^BenchmarkKV_Serving$$' -test.benchmem -test.benchtime 1x \
		| $(GO) run ./cmd/benchjson -o bench-smoke-kv.json
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -n "$$base" ]; then \
		$(GO) run ./cmd/benchjson -diff -warn-sim-regress 20 -warn-bytes-regress 30 "$$base" bench-smoke-kv.json; \
	else \
		echo "bench-smoke-kv: no committed BENCH_<n>.json baseline, skipping diff"; \
	fi
	@rm -f bench-smoke-kv.json

# cover profiles the fault-critical data plane — the packages the fault
# injection and recovery machinery runs through, plus the KV-cache tier
# that drives writes through it — and prints per-function plus total
# statement coverage. The profile lands in cover.out for
# `go tool cover -html=cover.out` spelunking.
COVER_PKGS = ./internal/ssd ./internal/cam ./internal/bam ./internal/spdk ./internal/fault ./internal/kvcache

cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@$(GO) tool cover -func=cover.out | tail -1

# cover-smoke is the CI variant: same profile, then a diff of the total
# against the committed COVERAGE_BASELINE.txt that warns (without failing)
# when statement coverage drops by more than one point — the coverage
# sibling of bench-smoke's sim-rate warning.
cover-smoke: cover
	@cur=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	if [ -f COVERAGE_BASELINE.txt ]; then \
		base=$$(cat COVERAGE_BASELINE.txt); \
		echo "cover-smoke: total $$cur% (baseline $$base%)"; \
		awk -v c="$$cur" -v b="$$base" 'BEGIN { if (c + 1.0 < b) \
			printf("::warning::coverage dropped: %.1f%% vs baseline %.1f%%\n", c, b) }'; \
	else \
		echo "cover-smoke: no COVERAGE_BASELINE.txt baseline, skipping diff"; \
	fi
	@rm -f cover.out

# profile captures CPU and allocation profiles of the two hottest figure
# reproductions — the Fig 8 throughput sweep (driver/device data plane) and
# the Fig 10a out-of-core sort (application pipeline) — under the quick
# workloads, writing pprof files under profiles/. Start perf work from
# these (see README "Profiling" for the read workflow) instead of guessing.
profile:
	@mkdir -p profiles
	$(GO) run ./cmd/cambench -exp fig8 -quick \
		-cpuprofile profiles/fig8.cpu.pprof -memprofile profiles/fig8.mem.pprof >/dev/null
	$(GO) run ./cmd/cambench -exp fig10a -quick \
		-cpuprofile profiles/fig10a.cpu.pprof -memprofile profiles/fig10a.mem.pprof >/dev/null
	@ls -l profiles/

# bench-diff compares the two most recent BENCH_<n>.json snapshots,
# printing per-benchmark percentage deltas (ns/op, B/op, allocs/op, and
# the sim_per_wall simulation rate).
bench-diff:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2); \
	if [ $$# -lt 2 ]; then \
		echo "bench-diff: need at least two BENCH_<n>.json snapshots (run make bench)"; \
		exit 1; \
	fi; \
	$(GO) run ./cmd/benchjson -diff "$$1" "$$2"
