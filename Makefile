# Tier-1 gate: `make check` is exactly what CI runs, so a green local check
# means a green pipeline.

GO ?= go

.PHONY: all build test vet lint race vuln check check-fast

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs camlint, the repo's simulation-invariant analyzers
# (internal/lint): nodeterminism, errchecksim, eventtime, mutexheld.
lint:
	$(GO) run ./cmd/camlint ./...

race:
	$(GO) test -race ./...

# vuln runs govulncheck when installed (CI installs it; local runs skip
# gracefully since this repo must build without network access).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# check is the full gate. The race-enabled test run dominates (~10 min).
check: build vet lint race vuln

# check-fast trades the race detector for speed during local iteration.
check-fast: build vet lint test
